// Package dd implements double-double arithmetic: an unevaluated sum of
// two float64 values carrying ~106 bits of significand, built from the
// classical error-free transformations (Dekker 1971; Knuth TAOCP §4.2.2).
//
// The weak-distance framework uses it as the §5.2 mitigation the paper
// suggests ("one can implement W with higher-precision arithmetic"): the
// multiplicative boundary weak distance w = Π|aᵢ-bᵢ| can underflow to a
// spurious zero in binary64 when many small factors accumulate — a
// Limitation 2 defect. Accumulating the product in double-double with a
// separate scale exponent removes those spurious zeros without losing
// the exact-zero property (a product is zero iff some factor is zero).
package dd

import "math"

// DD is a double-double value: the sum hi + lo with |lo| <= ulp(hi)/2.
type DD struct {
	Hi, Lo float64
}

// FromFloat lifts a float64.
func FromFloat(x float64) DD { return DD{Hi: x} }

// Float rounds the double-double back to the nearest float64.
func (a DD) Float() float64 { return a.Hi + a.Lo }

// IsZero reports whether the value is exactly zero.
func (a DD) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// twoSum is the error-free transformation of a + b (Knuth): s + e = a + b
// exactly, with s = fl(a + b).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bVirt := s - a
	aVirt := s - bVirt
	e = (a - aVirt) + (b - bVirt)
	return
}

// twoProd is the error-free transformation of a * b via FMA:
// p + e = a*b exactly, with p = fl(a*b).
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return
}

// Add returns a + b in double-double.
func Add(a, b DD) DD {
	s, e := twoSum(a.Hi, b.Hi)
	e += a.Lo + b.Lo
	hi, lo := quickTwoSum(s, e)
	return DD{Hi: hi, Lo: lo}
}

// AddFloat returns a + x.
func AddFloat(a DD, x float64) DD { return Add(a, FromFloat(x)) }

// Sub returns a - b.
func Sub(a, b DD) DD { return Add(a, Neg(b)) }

// Neg returns -a.
func Neg(a DD) DD { return DD{Hi: -a.Hi, Lo: -a.Lo} }

// Mul returns a * b in double-double.
func Mul(a, b DD) DD {
	p, e := twoProd(a.Hi, b.Hi)
	e += a.Hi*b.Lo + a.Lo*b.Hi
	hi, lo := quickTwoSum(p, e)
	return DD{Hi: hi, Lo: lo}
}

// MulFloat returns a * x.
func MulFloat(a DD, x float64) DD { return Mul(a, FromFloat(x)) }

// quickTwoSum renormalizes assuming |a| >= |b| (or a == 0).
func quickTwoSum(a, b float64) (hi, lo float64) {
	hi = a + b
	lo = b - (hi - a)
	if math.IsNaN(lo) || math.IsInf(hi, 0) {
		lo = 0
	}
	return
}

// Cmp compares a and b: -1, 0, +1.
func Cmp(a, b DD) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// ScaledProduct accumulates a product of nonnegative float64 factors
// without underflow or overflow: the value is mant × 2^exp2 with the
// mantissa kept in [1, 2) (double-double for the low bits). The product
// is exactly zero iff some factor is exactly zero — the invariant the
// boundary weak distance needs (Def. 3.1(b-c)).
type ScaledProduct struct {
	mant DD
	exp2 int64
	zero bool
	nan  bool
}

// NewScaledProduct starts at 1.
func NewScaledProduct() *ScaledProduct {
	return &ScaledProduct{mant: FromFloat(1)}
}

// Reset restores the product to 1.
func (p *ScaledProduct) Reset() {
	p.mant = FromFloat(1)
	p.exp2 = 0
	p.zero = false
	p.nan = false
}

// MulFactor multiplies the product by a nonnegative factor.
func (p *ScaledProduct) MulFactor(f float64) {
	switch {
	case p.nan || p.zero:
		return
	case math.IsNaN(f):
		p.nan = true
		return
	case f == 0:
		p.zero = true
		return
	case math.IsInf(f, 1):
		// Saturate the exponent; the product stays positive.
		p.exp2 += 1 << 40
		return
	}
	frac, exp := math.Frexp(f) // f = frac * 2^exp, frac in [0.5, 1)
	p.exp2 += int64(exp)
	p.mant = MulFloat(p.mant, frac)
	// Renormalize the mantissa into [0.5, 2) range of magnitude.
	mfrac, mexp := math.Frexp(p.mant.Hi)
	if mexp != 0 {
		p.exp2 += int64(mexp)
		p.mant = DD{Hi: mfrac, Lo: math.Ldexp(p.mant.Lo, -mexp)}
	}
}

// IsZero reports whether the accumulated product is exactly zero.
func (p *ScaledProduct) IsZero() bool { return p.zero }

// Value rounds the product to float64, saturating to the finite range
// so it can serve as an objective value (never a spurious 0 for a
// nonzero product, never Inf).
func (p *ScaledProduct) Value() float64 {
	if p.nan {
		return math.MaxFloat64
	}
	if p.zero {
		return 0
	}
	v := math.Ldexp(p.mant.Float(), clampExp(p.exp2))
	if v == 0 {
		// The true product is positive but below the subnormal range:
		// report the smallest positive float so zero stays reserved for
		// genuine boundary hits.
		return math.SmallestNonzeroFloat64
	}
	if math.IsInf(v, 0) {
		return math.MaxFloat64
	}
	return math.Abs(v)
}

// Log2 returns the base-2 logarithm of the product (for graded
// comparison across the full dynamic range).
func (p *ScaledProduct) Log2() float64 {
	if p.zero {
		return math.Inf(-1)
	}
	if p.nan {
		return math.Inf(1)
	}
	return float64(p.exp2) + math.Log2(math.Abs(p.mant.Float()))
}

func clampExp(e int64) int {
	if e > 2000 {
		return 2000
	}
	if e < -2000 {
		return -2000
	}
	return int(e)
}
