package dd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTwoSumExact(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		s, e := twoSum(a, b)
		if math.IsInf(s, 0) {
			return true // overflow: transformation not applicable
		}
		// s + e == a + b exactly; checked by re-summation in both orders.
		return s+e == a+b || e == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTwoProdExact(t *testing.T) {
	// The FMA residual recovers the exact product error.
	cases := [][2]float64{
		{0.1, 0.2}, {1e8 + 1, 1e8 - 1}, {math.Pi, math.E}, {1.5, 2.5},
	}
	for _, c := range cases {
		p, e := twoProd(c[0], c[1])
		got := Add(FromFloat(p), FromFloat(e))
		// Verify p is the rounding of the true product (e is the error).
		if p != c[0]*c[1] {
			t.Errorf("p mismatch for %v", c)
		}
		if got.Hi != p {
			t.Errorf("renormalization moved the head for %v", c)
		}
	}
}

func TestAddCarriesExtraPrecision(t *testing.T) {
	// 1 + 1e-30 is invisible in float64 but visible in double-double.
	a := Add(FromFloat(1), FromFloat(1e-30))
	if a.Hi != 1 || a.Lo != 1e-30 {
		t.Errorf("a = %+v", a)
	}
	b := Sub(a, FromFloat(1))
	if b.Float() != 1e-30 {
		t.Errorf("recovered %v, want 1e-30", b.Float())
	}
}

func TestMulPrecision(t *testing.T) {
	// (1 + 2^-53)² = 1 + 2^-52 + 2^-106: double-double keeps the middle
	// term exactly.
	x := Add(FromFloat(1), FromFloat(math.Ldexp(1, -53)))
	sq := Mul(x, x)
	want := Add(FromFloat(1), FromFloat(math.Ldexp(1, -52)))
	diff := Sub(sq, want).Float()
	if math.Abs(diff) > math.Ldexp(1, -100) {
		t.Errorf("square error %g", diff)
	}
}

func TestCmp(t *testing.T) {
	one := FromFloat(1)
	onePlus := Add(one, FromFloat(1e-30))
	if Cmp(one, onePlus) != -1 || Cmp(onePlus, one) != 1 || Cmp(one, one) != 0 {
		t.Error("Cmp ordering broken at sub-ulp resolution")
	}
}

func TestScaledProductNoUnderflow(t *testing.T) {
	// 10 factors of 1e-70 underflow to 0 in plain float64 (1e-700), but
	// the scaled product stays positive.
	plain := 1.0
	p := NewScaledProduct()
	for i := 0; i < 10; i++ {
		plain *= 1e-70
		p.MulFactor(1e-70)
	}
	if plain != 0 {
		t.Fatalf("test premise: plain product should underflow, got %g", plain)
	}
	if p.IsZero() {
		t.Fatal("scaled product spuriously zero")
	}
	if v := p.Value(); v <= 0 {
		t.Errorf("Value() = %v, want positive", v)
	}
	if got := p.Log2(); math.Abs(got-(-700/math.Log10(2))) > 1 {
		t.Errorf("Log2 = %v, want ≈ %v", got, -700/math.Log10(2))
	}
}

func TestScaledProductNoOverflow(t *testing.T) {
	p := NewScaledProduct()
	for i := 0; i < 10; i++ {
		p.MulFactor(1e300)
	}
	if v := p.Value(); math.IsInf(v, 0) || v != math.MaxFloat64 {
		t.Errorf("Value() = %v, want saturation at MaxFloat64", v)
	}
}

func TestScaledProductExactZero(t *testing.T) {
	p := NewScaledProduct()
	p.MulFactor(0.5)
	p.MulFactor(0)
	p.MulFactor(123)
	if !p.IsZero() || p.Value() != 0 {
		t.Error("zero factor must make the product exactly zero")
	}
	if !math.IsInf(p.Log2(), -1) {
		t.Error("Log2 of zero should be -Inf")
	}
}

func TestScaledProductZeroIffFactorZero(t *testing.T) {
	prop := func(fs []float64) bool {
		p := NewScaledProduct()
		anyZero := false
		anyNaN := false
		for _, f := range fs {
			f = math.Abs(f)
			if math.IsNaN(f) {
				anyNaN = true
			}
			if f == 0 {
				anyZero = true
			}
			p.MulFactor(f)
		}
		if anyNaN {
			return true // NaN saturates; zero state may have preceded it
		}
		return p.IsZero() == anyZero && (p.Value() == 0) == anyZero
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestScaledProductMatchesPlainInRange(t *testing.T) {
	// For well-scaled factors the scaled product agrees with the plain
	// one to high relative accuracy.
	p := NewScaledProduct()
	plain := 1.0
	for _, f := range []float64{2.5, 0.125, 3.75, 1.0, 9.5, 0.004} {
		p.MulFactor(f)
		plain *= f
	}
	if rel := math.Abs(p.Value()-plain) / plain; rel > 1e-15 {
		t.Errorf("scaled %v vs plain %v (rel %g)", p.Value(), plain, rel)
	}
}

func TestScaledProductReset(t *testing.T) {
	p := NewScaledProduct()
	p.MulFactor(0)
	p.Reset()
	p.MulFactor(2)
	if p.IsZero() || p.Value() != 2 {
		t.Errorf("after reset: %v", p.Value())
	}
}

func TestScaledProductInfFactor(t *testing.T) {
	p := NewScaledProduct()
	p.MulFactor(math.Inf(1))
	if p.IsZero() {
		t.Error("inf factor must not zero the product")
	}
	if v := p.Value(); v != math.MaxFloat64 {
		t.Errorf("Value = %v, want saturation", v)
	}
}
