package sat

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fp"
	"repro/internal/opt"
)

func solveText(t *testing.T, src string, o Options) (Result, *Formula) {
	t.Helper()
	f, _, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Solve(context.Background(), f, o), f
}

func TestMotivatingConstraintRoundToNearest(t *testing.T) {
	// §1: x < 1 && x + 1 >= 2 is satisfiable under round-to-nearest
	// (x = 0.9999999999999999); MathSAT agrees.
	r, f := solveText(t, "x < 1 && x + 1 >= 2", Options{Seed: 1, Bounds: []opt.Bound{{Lo: -4, Hi: 4}}})
	if r.Verdict != Sat {
		t.Fatalf("expected SAT, got %+v", r)
	}
	if !f.Eval(r.Model) {
		t.Fatalf("model %v does not satisfy", r.Model)
	}
	if r.Model[0] != 0.9999999999999999 {
		t.Errorf("model %v, expected the predecessor of 1", r.Model[0])
	}
}

func TestUnsatReportsUnknown(t *testing.T) {
	// x < 1 && x > 2 has no models; with a bounded budget the solver
	// reports Unknown with a positive residual (Limitation 3: it cannot
	// prove UNSAT, but it must not report SAT).
	r, _ := solveText(t, "x < 1 && x > 2", Options{
		Seed: 2, Starts: 3, EvalsPerStart: 3000,
		Bounds: []opt.Bound{{Lo: -100, Hi: 100}},
	})
	if r.Verdict == Sat {
		t.Fatalf("unsound SAT on an unsatisfiable formula: %+v", r)
	}
	if r.MinDistance <= 0 {
		t.Errorf("min distance %v, want > 0", r.MinDistance)
	}
}

func TestDisjunction(t *testing.T) {
	r, f := solveText(t, "x == 5 || x == -7", Options{Seed: 3, Bounds: []opt.Bound{{Lo: -100, Hi: 100}}})
	if r.Verdict != Sat || !f.Eval(r.Model) {
		t.Fatalf("%+v", r)
	}
	if x := r.Model[0]; x != 5 && x != -7 {
		t.Errorf("model %v", x)
	}
}

func TestMultiVariable(t *testing.T) {
	r, f := solveText(t, "x + y == 10 && x - y == 4", Options{Seed: 4, Bounds: []opt.Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}}})
	if r.Verdict != Sat {
		t.Fatalf("%+v", r)
	}
	if !f.Eval(r.Model) {
		t.Fatalf("model %v rejected", r.Model)
	}
}

func TestTranscendentalAtom(t *testing.T) {
	// The class SMT solvers cannot handle (§1): constraints through tan.
	r, f := solveText(t, "x < 1 && x + tan(x) >= 2", Options{Seed: 5, Bounds: []opt.Bound{{Lo: -1.5, Hi: 1}}})
	if r.Verdict != Sat {
		t.Fatalf("expected SAT, got %+v", r)
	}
	if !f.Eval(r.Model) {
		t.Fatalf("model %v rejected", r.Model)
	}
}

func TestModelsAlwaysVerified(t *testing.T) {
	// Soundness property: whenever Solve reports SAT, the model
	// concretely satisfies the formula.
	formulas := []string{
		"x * x == 2",                 // no exact float sqrt(2): likely Unknown
		"x * x >= 2 && x * x <= 2.1", // interval: satisfiable
		"fabs(x) == 3",               // two models
		"x / 3 == 1",                 //
		"sqrt(x) == 2",               //
		"x != x",                     // only NaN, unreachable in finite search: Unknown
		"x > 0 && log(x) == 0",       // x = 1
		"exp(x) >= 2 && exp(x) <= 3", //
		"x * 0 == 0",                 // any finite x
		"x - x == 0 && x * 2 == x + x",
	}
	for _, src := range formulas {
		f, _, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		r := Solve(context.Background(), f, Options{Seed: 6, Starts: 4, EvalsPerStart: 8000, Bounds: boundsFor(f.Dim(), -50, 50)})
		if r.Verdict == Sat && !f.Eval(r.Model) {
			t.Errorf("%q: unsound model %v", src, r.Model)
		}
	}
}

func boundsFor(dim int, lo, hi float64) []opt.Bound {
	bs := make([]opt.Bound, dim)
	for i := range bs {
		bs[i] = opt.Bound{Lo: lo, Hi: hi}
	}
	return bs
}

func TestWeakDistanceProperties(t *testing.T) {
	f, _, err := Parse("x < 1 && x + 1 >= 2")
	if err != nil {
		t.Fatal(err)
	}
	w := f.WeakDistance(true)
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		d := w([]float64{x})
		if d < 0 {
			return false
		}
		// Zero iff model (Def. 3.1(b-c)).
		return (d == 0) == f.Eval([]float64{x})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRealDistanceLimitation2(t *testing.T) {
	// With real-valued distances, x*x == -1 style traps do not arise,
	// but underflow can produce spurious zeros; the Member guard must
	// reject them so Solve never returns an unsound model.
	f := &Formula{Clauses: []Clause{{Atom{
		Op: fp.EQ,
		L:  &Bin{Op: OpMul, L: Var(0), R: Var(0)},
		R:  Const(0),
	}}}}
	// x*x == 0 holds for |x| < ~1.5e-162 by underflow — these ARE
	// genuine floating-point models (the comparison is over FP values),
	// so SAT with e.g. x=1e-200 is correct here.
	r := Solve(context.Background(), f, Options{Seed: 7, RealDist: true, Bounds: []opt.Bound{{Lo: -1, Hi: 1}}})
	if r.Verdict != Sat {
		t.Fatalf("%+v", r)
	}
	if !f.Eval(r.Model) {
		t.Errorf("model %v rejected by concrete evaluation", r.Model)
	}
}

func TestGroundFormula(t *testing.T) {
	r, _ := solveText(t, "1 < 2", Options{})
	if r.Verdict != Sat {
		t.Errorf("ground true formula: %+v", r)
	}
	r2, _ := solveText(t, "2 < 1", Options{})
	if r2.Verdict == Sat {
		t.Errorf("ground false formula: %+v", r2)
	}
}

func TestParseBasics(t *testing.T) {
	f, vars, err := Parse("a + b * 2 <= 7 && (a == 1 || b == 2) && fabs(a - b) < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 3 {
		t.Errorf("%d clauses", len(f.Clauses))
	}
	if len(f.Clauses[1]) != 2 {
		t.Errorf("clause 1 has %d atoms", len(f.Clauses[1]))
	}
	if vars["a"] != 0 || vars["b"] != 1 {
		t.Errorf("vars %v", vars)
	}
	names := VarNames(vars)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names %v", names)
	}
	if f.Dim() != 2 {
		t.Errorf("dim %d", f.Dim())
	}
}

func TestParsePrecedence(t *testing.T) {
	f, _, err := Parse("x + 2 * 3 == 7")
	if err != nil {
		t.Fatal(err)
	}
	// x = 1 satisfies iff precedence is respected (x + 6 == 7).
	if !f.Eval([]float64{1}) {
		t.Error("precedence broken")
	}
}

func TestParseParenthesizedExprVsClause(t *testing.T) {
	// '(' can open an expression or a clause; both must parse.
	for _, src := range []string{
		"(x + 1) * 2 == 4",
		"(x == 1 || x == 2)",
		"((x - 1)) >= 0",
		"(x == 1 || x == 2) && (x + 1) * 2 == 4",
	} {
		if _, _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",            // no atom
		"x +",         // truncated
		"x < ",        // missing rhs
		"x",           // no comparison
		"x < 1 &&",    // dangling
		"foo(x) == 1", // unknown function
		"x << 1",      // bad operator sequence: parses as <, then junk
		"x < 1 extra", // trailing tokens
		"(x < 1",      // unclosed clause
	} {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestFormulaString(t *testing.T) {
	f, _, err := Parse("x < 1 && x + 1 >= 2 || x == 0")
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	for _, want := range []string{"x0 < 1", "||", "&&", "(x0 + 1) >= 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestExprEval(t *testing.T) {
	e := &Bin{Op: OpDiv, L: &Call{Name: "exp", X: Const(0)}, R: Const(2)}
	if got := e.Eval(nil); got != 0.5 {
		t.Errorf("exp(0)/2 = %v", got)
	}
	n := &Neg{X: Var(0)}
	if got := n.Eval([]float64{3}); got != -3 {
		t.Errorf("-x = %v", got)
	}
}
