// Package sat implements the quantifier-free floating-point
// satisfiability instance of the reduction theory (§2 Instance 5, the
// XSat lineage [16]): a CNF constraint over floating-point expressions
// is transformed into a nonnegative weak distance R whose zeros are
// exactly the models, and deciding satisfiability reduces to minimizing
// R (Theorem 3.3).
//
// Per the paper's §7 discussion, the atom distances default to the
// integer ULP metric, which mitigates the unsoundness of real-valued
// distances under rounding (Limitation 2).
package sat

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fp"
	"repro/internal/opt"
)

// Expr is a floating-point expression over variables x0..x(n-1).
type Expr interface {
	// Eval computes the expression's IEEE-754 binary64 value.
	Eval(x []float64) float64
	// String renders source-like text.
	String() string
	// maxVar returns the largest variable index used, or -1.
	maxVar() int
}

// Var is the i-th variable.
type Var int

// Eval implements Expr.
func (v Var) Eval(x []float64) float64 { return x[v] }

// String implements Expr.
func (v Var) String() string { return fmt.Sprintf("x%d", int(v)) }

func (v Var) maxVar() int { return int(v) }

// Const is a floating-point literal.
type Const float64

// Eval implements Expr.
func (c Const) Eval([]float64) float64 { return float64(c) }

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("%g", float64(c)) }

func (c Const) maxVar() int { return -1 }

// BinOp is an arithmetic operator.
type BinOp byte

// Arithmetic operators.
const (
	OpAdd BinOp = '+'
	OpSub BinOp = '-'
	OpMul BinOp = '*'
	OpDiv BinOp = '/'
)

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (b *Bin) Eval(x []float64) float64 {
	l, r := b.L.Eval(x), b.R.Eval(x)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		return l / r
	}
	return math.NaN()
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

func (b *Bin) maxVar() int { return maxInt(b.L.maxVar(), b.R.maxVar()) }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(x []float64) float64 { return -n.X.Eval(x) }

// String implements Expr.
func (n *Neg) String() string { return "-" + n.X.String() }

func (n *Neg) maxVar() int { return n.X.maxVar() }

// Call is a unary math-function application (sin, cos, tan, sqrt, fabs,
// exp, log) — the expression class SMT solvers struggle with (§1).
type Call struct {
	Name string
	X    Expr
}

// Eval implements Expr.
func (c *Call) Eval(x []float64) float64 {
	v := c.X.Eval(x)
	switch c.Name {
	case "sin":
		return math.Sin(v)
	case "cos":
		return math.Cos(v)
	case "tan":
		return math.Tan(v)
	case "sqrt":
		return math.Sqrt(v)
	case "fabs":
		return math.Abs(v)
	case "exp":
		return math.Exp(v)
	case "log":
		return math.Log(v)
	}
	return math.NaN()
}

// String implements Expr.
func (c *Call) String() string { return fmt.Sprintf("%s(%s)", c.Name, c.X) }

func (c *Call) maxVar() int { return c.X.maxVar() }

// Atom is one comparison between two expressions.
type Atom struct {
	Op   fp.CmpOp
	L, R Expr
}

// Holds reports whether the atom is satisfied at x.
func (a Atom) Holds(x []float64) bool {
	return a.Op.Eval(a.L.Eval(x), a.R.Eval(x))
}

// Dist returns the atom's branch distance at x (zero iff it holds).
func (a Atom) Dist(x []float64, ulp bool) float64 {
	l, r := a.L.Eval(x), a.R.Eval(x)
	if ulp {
		return fp.BranchDistULP(a.Op, l, r)
	}
	return fp.BranchDist(a.Op, l, r)
}

// String renders the atom.
func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }

// Clause is a disjunction of atoms.
type Clause []Atom

// Formula is a CNF: a conjunction of clauses.
type Formula struct {
	Clauses []Clause
	// NumVars is the variable count; zero means inferred from use.
	NumVars int
}

// Dim returns the number of variables.
func (f *Formula) Dim() int {
	if f.NumVars > 0 {
		return f.NumVars
	}
	max := -1
	for _, cl := range f.Clauses {
		for _, a := range cl {
			max = maxInt(max, maxInt(a.L.maxVar(), a.R.maxVar()))
		}
	}
	return max + 1
}

// String renders the CNF.
func (f *Formula) String() string {
	var cls []string
	for _, cl := range f.Clauses {
		var ats []string
		for _, a := range cl {
			ats = append(ats, a.String())
		}
		cls = append(cls, "("+strings.Join(ats, " || ")+")")
	}
	return strings.Join(cls, " && ")
}

// Eval reports whether x is a model (the decidable membership oracle).
func (f *Formula) Eval(x []float64) bool {
	for _, cl := range f.Clauses {
		sat := false
		for _, a := range cl {
			if a.Holds(x) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// WeakDistance builds the XSat distance R: per clause the minimum of
// its atoms' distances (a disjunction holds when one atom does), summed
// over clauses (all must hold). R(x) = 0 iff x is a model.
func (f *Formula) WeakDistance(ulp bool) core.WeakDistance {
	return func(x []float64) float64 {
		total := 0.0
		for _, cl := range f.Clauses {
			best := math.Inf(1)
			for _, a := range cl {
				if d := a.Dist(x, ulp); d < best {
					best = d
				}
			}
			total += best
			if math.IsInf(total, 0) || math.IsNaN(total) {
				return fp.MaxFloat
			}
		}
		return total
	}
}

// Options configures Solve.
type Options struct {
	// Seed makes runs deterministic.
	Seed int64
	// Starts is the restart count; zero selects 8.
	Starts int
	// EvalsPerStart bounds evaluations per restart; zero selects
	// 20000 * dim.
	EvalsPerStart int
	// Backend is the MO backend; nil selects Basinhopping.
	Backend opt.Minimizer
	// Bounds optionally restricts the search space.
	Bounds []opt.Bound
	// RealDist selects real-valued |l-r| distances instead of the
	// default ULP metric (for the Limitation-2 ablation).
	RealDist bool
	// Workers sets multi-start parallelism: 0 selects runtime.NumCPU(),
	// 1 forces the serial loop. The result is identical for every
	// value.
	Workers int
}

// Verdict is a satisfiability answer.
type Verdict int

// Verdicts. Unknown arises when minimization exhausts its budget with a
// positive minimum — incompleteness (Limitation 3) prevents concluding
// UNSAT.
const (
	Unknown Verdict = iota
	Sat
)

// Result is a solver outcome.
type Result struct {
	Verdict Verdict
	// Model is a satisfying assignment when Verdict == Sat.
	Model []float64
	// MinDistance is the smallest R value sampled.
	MinDistance float64
	// Evals counts R evaluations.
	Evals int
	// Canceled reports the search was cut short by context
	// cancellation; the Unknown verdict then covers an unfinished
	// budget, not an exhausted one.
	Canceled bool `json:"canceled,omitempty"`
}

// Solve decides the formula by weak-distance minimization, cancellable
// through ctx at evaluation granularity. A returned model is always
// verified by concrete evaluation (§5.2 guard), so Sat answers are
// sound; Unknown answers may be incomplete.
func Solve(ctx context.Context, f *Formula, o Options) Result {
	dim := f.Dim()
	if dim == 0 {
		// Ground formula: evaluate directly.
		if f.Eval(nil) {
			return Result{Verdict: Sat, Model: []float64{}}
		}
		return Result{Verdict: Unknown, MinDistance: math.Inf(1)}
	}
	w := f.WeakDistance(!o.RealDist)
	prob := core.Problem{
		Name: "xsat",
		Dim:  dim,
		W:    w,
		// R is a pure function of x (no monitor state), so every start
		// can share the one instance.
		NewW:   func() core.WeakDistance { return w },
		Member: f.Eval,
	}
	r := core.Solve(ctx, prob, core.Options{
		Backend:       o.Backend,
		Starts:        o.Starts,
		EvalsPerStart: o.EvalsPerStart,
		Seed:          o.Seed,
		Bounds:        o.Bounds,
		Workers:       o.Workers,
	})
	if r.Found {
		return Result{Verdict: Sat, Model: r.X, MinDistance: 0, Evals: r.Evals}
	}
	return Result{Verdict: Unknown, MinDistance: r.W, Evals: r.Evals, Canceled: r.Canceled}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
