package sat

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/fp"
	"repro/internal/lang"
)

// Parse reads a CNF from text: one clause per `&&`-separated group,
// atoms separated by `||`, e.g.
//
//	x < 1 && (x + 1 >= 2 || y * y == 4)
//
// Variables are arbitrary identifiers, assigned indices in first-use
// order (stable across the formula); the usual arithmetic operators,
// parentheses, numeric literals and the unary math builtins (sin, cos,
// tan, sqrt, fabs, exp, log) are supported.
func Parse(src string) (*Formula, map[string]int, error) {
	toks, err := lang.Lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks, vars: map[string]int{}}
	f, err := p.parseFormula()
	if err != nil {
		return nil, nil, err
	}
	f.NumVars = len(p.vars)
	return f, p.vars, nil
}

// VarNames returns the variable names of a Parse result ordered by
// index.
func VarNames(vars map[string]int) []string {
	names := make([]string, len(vars))
	for n, i := range vars {
		names[i] = n
	}
	sort.SliceStable(names, func(i, j int) bool { return vars[names[i]] < vars[names[j]] })
	return names
}

type parser struct {
	toks []lang.Token
	pos  int
	vars map[string]int
}

func (p *parser) cur() lang.Token  { return p.toks[p.pos] }
func (p *parser) next() lang.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// parseFormula: clause ('&&' clause)*
func (p *parser) parseFormula() (*Formula, error) {
	f := &Formula{}
	for {
		cl, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		f.Clauses = append(f.Clauses, cl)
		if p.cur().Kind != lang.ANDAND {
			break
		}
		p.next()
	}
	if p.cur().Kind != lang.EOF {
		return nil, p.errf("unexpected %s after formula", p.cur())
	}
	return f, nil
}

// parseClause: atomgroup ('||' atomgroup)*. Parenthesized clauses are
// handled by atom-level parenthesis support plus the observation that a
// clause is a flat disjunction.
func (p *parser) parseClause() (Clause, error) {
	var cl Clause
	// A clause may be wrapped in parentheses: peek for '(' followed by
	// a full clause; since expressions also use parens, try to parse an
	// atom first and fall back.
	paren := false
	if p.cur().Kind == lang.LPAREN && p.clauseParen() {
		p.next()
		paren = true
	}
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		cl = append(cl, a)
		if p.cur().Kind != lang.OROR {
			break
		}
		p.next()
	}
	if paren {
		if p.cur().Kind != lang.RPAREN {
			return nil, p.errf("expected ) closing clause")
		}
		p.next()
	}
	return cl, nil
}

// clauseParen decides whether the '(' at the cursor opens a whole
// clause (contains a top-level comparison before its matching ')').
func (p *parser) clauseParen() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case lang.LPAREN:
			depth++
		case lang.RPAREN:
			depth--
			if depth == 0 {
				return false
			}
		case lang.LT, lang.LE, lang.GT, lang.GE, lang.EQ, lang.NE:
			if depth == 1 {
				return true
			}
		case lang.EOF:
			return false
		}
	}
	return false
}

// parseAtom: expr cmp expr
func (p *parser) parseAtom() (Atom, error) {
	l, err := p.parseExpr()
	if err != nil {
		return Atom{}, err
	}
	op, ok := cmpOf(p.cur().Kind)
	if !ok {
		return Atom{}, p.errf("expected comparison, found %s", p.cur())
	}
	p.next()
	r, err := p.parseExpr()
	if err != nil {
		return Atom{}, err
	}
	return Atom{Op: op, L: l, R: r}, nil
}

func cmpOf(k lang.Kind) (op fp.CmpOp, ok bool) {
	switch k {
	case lang.LT:
		return fp.LT, true
	case lang.LE:
		return fp.LE, true
	case lang.GT:
		return fp.GT, true
	case lang.GE:
		return fp.GE, true
	case lang.EQ:
		return fp.EQ, true
	case lang.NE:
		return fp.NE, true
	}
	return 0, false
}

// parseExpr: term (('+'|'-') term)*
func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case lang.PLUS:
			p.next()
			y, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			x = &Bin{Op: OpAdd, L: x, R: y}
		case lang.MINUS:
			p.next()
			y, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			x = &Bin{Op: OpSub, L: x, R: y}
		default:
			return x, nil
		}
	}
}

// parseTerm: unary (('*'|'/') unary)*
func (p *parser) parseTerm() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case lang.STAR:
			p.next()
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &Bin{Op: OpMul, L: x, R: y}
		case lang.SLASH:
			p.next()
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &Bin{Op: OpDiv, L: x, R: y}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().Kind == lang.MINUS {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	}
	return p.parsePrimary()
}

var satBuiltins = map[string]bool{
	"sin": true, "cos": true, "tan": true, "sqrt": true,
	"fabs": true, "exp": true, "log": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.next(); t.Kind {
	case lang.NUMBER:
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad number %q", t.Pos, t.Lit)
		}
		return Const(v), nil
	case lang.IDENT:
		if p.cur().Kind == lang.LPAREN {
			if !satBuiltins[t.Lit] {
				return nil, fmt.Errorf("%s: unknown function %s", t.Pos, t.Lit)
			}
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.cur().Kind != lang.RPAREN {
				return nil, p.errf("expected ) closing call")
			}
			p.next()
			return &Call{Name: t.Lit, X: x}, nil
		}
		idx, ok := p.vars[t.Lit]
		if !ok {
			idx = len(p.vars)
			p.vars[t.Lit] = idx
		}
		return Var(idx), nil
	case lang.LPAREN:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().Kind != lang.RPAREN {
			return nil, p.errf("expected )")
		}
		p.next()
		return x, nil
	default:
		return nil, fmt.Errorf("%s: expected expression, found %s", t.Pos, t)
	}
}
