package instrument

import (
	"repro/internal/fp"
)

// Overflow accumulates the overflow-detection weak distance of
// Algorithm 3: after every floating-point operation site l not in the
// tracked set L, it overwrites
//
//	w = |a| < MAX ? MAX - |a| : 0
//
// and aborts execution when w hits 0 (the injected `if (w == 0) return;`).
// The weak distance therefore targets the *last executed* not-yet-covered
// operation, which Algorithm 3 step 7 uses as the next target.
//
// w_init is 1 (Algorithm 3 step 3): when every operation is in L, all
// injected code is a no-op and W returns 1, signalling that no further
// overflow can be targeted.
type Overflow struct {
	// L is the set of operation sites already handled (overflowed with
	// earlier inputs, or given up on). Shared with the analysis driver.
	L map[int]bool

	w        float64
	lastSite int
}

// NewOverflow returns a monitor with an empty tracked set.
func NewOverflow() *Overflow {
	return &Overflow{L: make(map[int]bool)}
}

// Reset implements rt.Monitor.
func (m *Overflow) Reset() {
	m.w = 1
	m.lastSite = -1
}

// Branch implements rt.Monitor (overflow detection ignores branches).
func (m *Overflow) Branch(int, fp.CmpOp, float64, float64) {}

// FPOp implements rt.Monitor.
func (m *Overflow) FPOp(site int, v float64) bool {
	if m.L[site] {
		return false // behaves like a no-op once tracked (step 2 guard)
	}
	m.w = fp.OverflowDist(v)
	m.lastSite = site
	return m.w == 0
}

// Value implements rt.Monitor.
func (m *Overflow) Value() float64 { return m.w }

// LastSite returns the site whose distance w last took, i.e. the
// operation the previous execution effectively targeted; -1 when every
// executed operation was already tracked. Algorithm 3 step 7 adds this
// site to L after each minimization round.
func (m *Overflow) LastSite() int { return m.lastSite }
