package instrument

import (
	"repro/internal/fp"
)

// PathWitness records the branch decisions of one execution, providing
// the decidable membership oracle for path-reachability problems (the
// §5.2 soundness guard): after the run, Matches reports whether the
// execution followed a target path.
type PathWitness struct {
	decisions []Decision
}

// Reset implements rt.Monitor.
func (m *PathWitness) Reset() { m.decisions = m.decisions[:0] }

// Branch implements rt.Monitor.
func (m *PathWitness) Branch(site int, op fp.CmpOp, a, b float64) {
	m.decisions = append(m.decisions, Decision{Site: site, Taken: op.Eval(a, b)})
}

// FPOp implements rt.Monitor.
func (m *PathWitness) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor (the witness is not a weak distance; it
// reports 0 unconditionally).
func (m *PathWitness) Value() float64 { return 0 }

// Decisions returns the recorded decision sequence.
func (m *PathWitness) Decisions() []Decision { return m.decisions }

// Matches reports whether the recorded execution realizes the target:
// each target decision is matched, in order, by the execution's
// decision at that site (intervening unconstrained branches are
// allowed, mirroring the Path monitor's matching rule).
func (m *PathWitness) Matches(target []Decision) bool {
	next := 0
	for _, d := range m.decisions {
		if next >= len(target) {
			break
		}
		t := target[next]
		if d.Site != t.Site {
			continue
		}
		if d.Taken != t.Taken {
			return false
		}
		next++
	}
	return next == len(target)
}
