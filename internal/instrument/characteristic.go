package instrument

import (
	"repro/internal/fp"
)

// Characteristic is the flat weak distance of the paper's Fig. 7: for the
// boundary value analysis problem it returns 0 when some executed branch
// sits exactly on its boundary (a == b) and 1 otherwise. It satisfies
// Def. 3.1(a-c) — it *is* a weak distance — but carries no gradient, so
// minimizing it degenerates into pure random testing (Limitation 3
// illustration; ablated in the Fig. 7 bench).
type Characteristic struct {
	// Sites, when non-nil, restricts the boundary conditions considered.
	Sites map[int]bool

	hit bool
}

// Reset implements rt.Monitor.
func (m *Characteristic) Reset() { m.hit = false }

// Branch implements rt.Monitor.
func (m *Characteristic) Branch(site int, op fp.CmpOp, a, b float64) {
	if m.Sites != nil && !m.Sites[site] {
		return
	}
	if a == b {
		m.hit = true
	}
}

// FPOp implements rt.Monitor.
func (m *Characteristic) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor.
func (m *Characteristic) Value() float64 {
	if m.hit {
		return 0
	}
	return 1
}
