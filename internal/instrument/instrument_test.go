package instrument_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/progs"
	"repro/internal/rt"
)

func TestBoundaryFig2KnownZeros(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Boundary{})
	// The paper's known boundary values for Fig. 2 / Fig. 3.
	for _, x := range []float64{-3, 1, 2, 0.9999999999999999} {
		if got := w([]float64{x}); got != 0 {
			t.Errorf("W(%v) = %v, want 0", x, got)
		}
	}
	// Non-boundary inputs give strictly positive distances.
	for _, x := range []float64{0, 5, -10, 1.5} {
		if got := w([]float64{x}); got <= 0 {
			t.Errorf("W(%v) = %v, want > 0", x, got)
		}
	}
}

func TestBoundaryIsNonnegative(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Boundary{})
	prop := func(x float64) bool {
		v := w([]float64{x})
		return v >= 0 || math.IsNaN(x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryZeroImpliesWitness(t *testing.T) {
	// Def. 3.1(b) on a decidable oracle: every zero of the boundary weak
	// distance is witnessed by an exact a == b at some branch.
	p := progs.Fig2()
	bw := &instrument.Boundary{}
	wit := &instrument.BoundaryWitness{}
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		v := p.Execute(bw, []float64{x})
		p.Execute(wit, []float64{x})
		if v == 0 {
			return len(wit.Sites()) > 0
		}
		return len(wit.Sites()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBoundarySiteRestriction(t *testing.T) {
	p := progs.Fig2()
	// Restrict to the second branch: x = 1 no longer a zero via site 0,
	// but still a zero via y = 4 at site 1? For x = 1: x <= 1, x becomes
	// 2, y = 4 → boundary at site 1. For x = -3: y = 4 likewise. An
	// input hitting only site 0's boundary is x = 1... also hits site 1.
	// Use x = 0.5: neither boundary → positive.
	w := p.WeakDistance(&instrument.Boundary{Sites: map[int]bool{progs.Fig2BranchY: true}})
	if got := w([]float64{0.5}); got <= 0 {
		t.Errorf("restricted W(0.5) = %v, want > 0", got)
	}
	if got := w([]float64{2.0}); got != 0 {
		t.Errorf("restricted W(2) = %v, want 0 (y = 4 boundary)", got)
	}
}

func TestBoundaryULP(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Boundary{ULP: true})
	if got := w([]float64{1.0}); got != 0 {
		t.Errorf("ULP W(1) = %v, want 0", got)
	}
	if got := w([]float64{1.5}); got <= 0 {
		t.Errorf("ULP W(1.5) = %v, want > 0", got)
	}
}

func TestBoundaryWitnessHits(t *testing.T) {
	p := progs.Fig2()
	wit := &instrument.BoundaryWitness{}
	p.Execute(wit, []float64{1.0})
	// x = 1 hits site 0 (x == 1) and then x becomes 2, y = 4 hits site 1.
	hits := wit.Hits()
	if hits[progs.Fig2BranchX] != 1 || hits[progs.Fig2BranchY] != 1 {
		t.Errorf("hits = %v, want both sites once", hits)
	}
	if sites := wit.Sites(); len(sites) != 2 || sites[0] != progs.Fig2BranchX {
		t.Errorf("sites = %v, want [0 1] in hit order", sites)
	}
}

func TestPathFig2BothBranches(t *testing.T) {
	p := progs.Fig2()
	target := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}
	w := p.WeakDistance(&instrument.Path{Target: target})
	// Paper §4.3: the solution space is [-3, 1].
	for _, x := range []float64{-3, -1, 0, 1} {
		if got := w([]float64{x}); got != 0 {
			t.Errorf("W(%v) = %v, want 0 (in [-3,1])", x, got)
		}
	}
	for _, x := range []float64{-3.0000001, 1.0000001, 5, -100} {
		if got := w([]float64{x}); got <= 0 {
			t.Errorf("W(%v) = %v, want > 0 (outside [-3,1])", x, got)
		}
	}
}

func TestPathMatchesPaperExample(t *testing.T) {
	// §4.3 injects w += (x <= 1 ? 0 : x - 1) and w += (y <= 4 ? 0 : y-4).
	// For x = 5: w = (5-1) + (25-4) = 25.
	p := progs.Fig2()
	target := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}
	w := p.WeakDistance(&instrument.Path{Target: target})
	if got := w([]float64{5}); got != 25 {
		t.Errorf("W(5) = %v, want 25 per the paper's additive construction", got)
	}
}

func TestPathNegatedDecision(t *testing.T) {
	p := progs.Fig2()
	// Require branch 0 NOT taken: x > 1.
	w := p.WeakDistance(&instrument.Path{Target: []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: false},
	}})
	if got := w([]float64{5}); got != 0 {
		t.Errorf("W(5) = %v, want 0", got)
	}
	if got := w([]float64{0}); got <= 0 {
		t.Errorf("W(0) = %v, want > 0", got)
	}
}

func TestPathStructuralDivergence(t *testing.T) {
	// A target decision at a site never reached contributes its missing
	// unit, keeping W positive.
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Path{Target: []instrument.Decision{
		{Site: 99, Taken: true}, // nonexistent site
	}})
	if got := w([]float64{0}); got != 1 {
		t.Errorf("W = %v, want 1 (one unreached decision)", got)
	}
}

func TestPathNonnegative(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Path{Target: []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: false},
	}})
	prop := func(x float64) bool {
		return w([]float64{x}) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestOverflowMonitorBasics(t *testing.T) {
	p := progs.Fig2()
	m := instrument.NewOverflow()
	w := p.WeakDistance(m)
	// Ordinary input: far from overflow everywhere (MAX - 1 rounds to
	// MAX, so the distance saturates at MAX itself).
	if got := w([]float64{1}); got <= 0 || math.IsInf(got, 0) {
		t.Errorf("W(1) = %v, want finite positive", got)
	}
	// Huge input: x*x overflows → w = 0 at the square op.
	if got := w([]float64{1e200}); got != 0 {
		t.Errorf("W(1e200) = %v, want 0", got)
	}
	if m.LastSite() != progs.Fig2OpSquare {
		t.Errorf("LastSite = %d, want the square op %d", m.LastSite(), progs.Fig2OpSquare)
	}
}

func TestOverflowEarlyStop(t *testing.T) {
	// When the square op overflows, execution must stop before the dec
	// op (the injected `if (w == 0) return`).
	p := progs.Fig2()
	m := instrument.NewOverflow()
	p.Execute(m, []float64{1e200})
	if m.LastSite() != progs.Fig2OpSquare {
		t.Errorf("expected stop at square, last site %d", m.LastSite())
	}
}

func TestOverflowTrackedSetMakesNoOp(t *testing.T) {
	p := progs.Fig2()
	m := instrument.NewOverflow()
	m.L[progs.Fig2OpInc] = true
	m.L[progs.Fig2OpSquare] = true
	m.L[progs.Fig2OpDec] = true
	// All ops tracked → injected code is a no-op → W returns w_init = 1.
	if got := p.Execute(m, []float64{1e200}); got != 1 {
		t.Errorf("W = %v, want w_init 1 with all ops tracked", got)
	}
	if m.LastSite() != -1 {
		t.Errorf("LastSite = %d, want -1", m.LastSite())
	}
}

func TestOverflowTargetsLastUntracked(t *testing.T) {
	// With the square op tracked, the last untracked op on the both-true
	// path is dec; its distance overwrites previous ones.
	p := progs.Fig2()
	m := instrument.NewOverflow()
	m.L[progs.Fig2OpSquare] = true
	p.Execute(m, []float64{0}) // ops: inc(1), square(tracked), dec(0)
	if m.LastSite() != progs.Fig2OpDec {
		t.Errorf("LastSite = %d, want dec %d", m.LastSite(), progs.Fig2OpDec)
	}
}

func TestCoverageMonitor(t *testing.T) {
	p := progs.Fig2()
	m := instrument.NewCoverage()
	// Nothing covered: any execution takes a new side → W = 0.
	if got := p.Execute(m, []float64{0}); got != 0 {
		t.Errorf("W = %v, want 0 on empty covered set", got)
	}
	// Cover the both-true sides; an input taking them again gets a
	// positive distance toward flipping.
	m.Covered[instrument.Side{Site: progs.Fig2BranchX, Taken: true}] = true
	m.Covered[instrument.Side{Site: progs.Fig2BranchY, Taken: true}] = true
	if got := p.Execute(m, []float64{0}); got <= 0 {
		t.Errorf("W = %v, want > 0 (both sides already covered)", got)
	}
	// An input flipping branch 0 still covers new sides.
	if got := p.Execute(m, []float64{5}); got != 0 {
		t.Errorf("W(5) = %v, want 0 (false sides uncovered)", got)
	}
}

func TestCoverageFullyCoveredFloor(t *testing.T) {
	p := progs.Fig2()
	m := instrument.NewCoverage()
	for _, s := range []instrument.Side{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchX, Taken: false},
		{Site: progs.Fig2BranchY, Taken: true},
		{Site: progs.Fig2BranchY, Taken: false},
	} {
		m.Covered[s] = true
	}
	// Everything covered: W must stay positive everywhere (S = ∅).
	for _, x := range []float64{0, 1, 5, -3, 2} {
		if got := p.Execute(m, []float64{x}); got <= 0 {
			t.Errorf("W(%v) = %v, want > 0 with full coverage", x, got)
		}
	}
}

func TestRecordNewSides(t *testing.T) {
	p := progs.Fig2()
	rec := &instrument.RecordNewSides{Covered: map[instrument.Side]bool{
		{Site: progs.Fig2BranchX, Taken: true}: true,
	}}
	p.Execute(rec, []float64{0})
	sides := rec.Sides()
	if len(sides) != 1 || sides[0] != (instrument.Side{Site: progs.Fig2BranchY, Taken: true}) {
		t.Errorf("new sides = %v, want only branch-1 true", sides)
	}
}

func TestCharacteristicIsFlat(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Characteristic{})
	if got := w([]float64{1.0}); got != 0 {
		t.Errorf("characteristic W(1) = %v, want 0", got)
	}
	// Arbitrarily close to the boundary it is still exactly 1: no
	// gradient (Fig. 7).
	near := math.Nextafter(1.0, 2)
	if got := w([]float64{near}); got != 1 {
		t.Errorf("characteristic W(1+ulp) = %v, want 1", got)
	}
	if got := w([]float64{500.0}); got != 1 {
		t.Errorf("characteristic W(500) = %v, want 1", got)
	}
}

func TestEqZeroLimitation2(t *testing.T) {
	// §5.2: naive weak distance w = x*x for `if (x == 0)` — spurious
	// zeros under underflow. The ULP-based branch distance does not
	// share the defect.
	naive := func(x []float64) float64 { return x[0] * x[0] }
	if naive([]float64{1e-200}) != 0 {
		t.Fatal("expected underflow to zero — the Limitation 2 setup")
	}
	p := progs.EqZero()
	w := p.WeakDistance(&instrument.Path{
		Target: []instrument.Decision{{Site: progs.EqZeroBranch, Taken: true}},
		ULP:    true,
	})
	if got := w([]float64{1e-200}); got == 0 {
		t.Error("ULP path distance must not vanish at x = 1e-200")
	}
	if got := w([]float64{0}); got != 0 {
		t.Errorf("W(0) = %v, want 0", got)
	}
}

func TestBoundaryHighPrecisionFixesUnderflow(t *testing.T) {
	// A program whose branch chain multiplies many tiny |a-b| factors:
	// the plain float64 product underflows to a spurious zero; the
	// high-precision accumulator does not (paper §5.2 mitigation).
	tiny := &rt.Program{
		Name: "tinychain",
		Dim:  1,
		Run: func(ctx *rt.Ctx, in []float64) {
			for site := 0; site < 10; site++ {
				// Every branch compares x against x+1e-70: distance
				// 1e-70 each (never an exact equality for x = 0).
				ctx.Cmp(site, fp.LT, in[0], in[0]+1e-70)
			}
		},
	}
	plain := tiny.WeakDistance(&instrument.Boundary{})
	if got := plain([]float64{0}); got != 0 {
		t.Fatalf("test premise: plain product should underflow to 0, got %g", got)
	}
	hp := tiny.WeakDistance(&instrument.Boundary{HighPrecision: true})
	if got := hp([]float64{0}); got == 0 {
		t.Error("high-precision boundary distance must not underflow to a spurious zero")
	}
}

func TestBoundaryHighPrecisionKeepsExactZeros(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Boundary{HighPrecision: true})
	for _, x := range []float64{-3, 1, 2, 0.9999999999999999} {
		if got := w([]float64{x}); got != 0 {
			t.Errorf("HP W(%v) = %v, want 0", x, got)
		}
	}
	for _, x := range []float64{0, 5, 1.5} {
		if got := w([]float64{x}); got <= 0 {
			t.Errorf("HP W(%v) = %v, want > 0", x, got)
		}
	}
}

func TestBoundaryHighPrecisionAgreesInRange(t *testing.T) {
	// Where no extreme scaling occurs, plain and high-precision values
	// agree to float64 rounding.
	p := progs.Fig2()
	plain := p.WeakDistance(&instrument.Boundary{})
	hp := p.WeakDistance(&instrument.Boundary{HighPrecision: true})
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		a, c := plain([]float64{x}), hp([]float64{x})
		if a == 0 || c == 0 {
			return a == c
		}
		rel := math.Abs(a-c) / math.Max(a, c)
		return rel < 1e-14
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPathWitnessMatches(t *testing.T) {
	p := progs.Fig2()
	wit := &instrument.PathWitness{}
	p.Execute(wit, []float64{0}) // both branches true
	bothTrue := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}
	if !wit.Matches(bothTrue) {
		t.Errorf("decisions %v should match both-true", wit.Decisions())
	}
	if wit.Matches([]instrument.Decision{{Site: progs.Fig2BranchX, Taken: false}}) {
		t.Error("wrong-direction target matched")
	}
	if wit.Matches([]instrument.Decision{{Site: 99, Taken: true}}) {
		t.Error("unreached-site target matched")
	}
	// Prefix targets match.
	if !wit.Matches(bothTrue[:1]) {
		t.Error("prefix target should match")
	}
	// Empty target trivially matches.
	if !wit.Matches(nil) {
		t.Error("empty target should match")
	}
}

func TestPathWitnessAgreesWithPathMonitor(t *testing.T) {
	// W(x) == 0 iff the witness matches, across random inputs — the
	// §5.2 guard is consistent with the weak distance it guards.
	p := progs.Fig2()
	target := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: false},
	}
	mon := &instrument.Path{Target: target}
	wit := &instrument.PathWitness{}
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		w := p.Execute(mon, []float64{x})
		p.Execute(wit, []float64{x})
		return (w == 0) == wit.Matches(target)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
