// Package instrument implements the weak-distance constructions of the
// paper as pluggable runtime monitors (the "Analysis Designer" layer of
// §5.2). Each monitor chooses a w_init and an update rule and accumulates
// the weak distance w while a program executes under instrumentation
// (either a native rt.Program port or an IR-interpreted DSL program).
//
// Monitors provided:
//
//   - Boundary: multiplicative |a-b| factors at branches (§4.2) — zeros
//     are boundary values.
//   - Path: additive branch-deviation penalties along a target path
//     (§4.3) — zeros trigger the path.
//   - Overflow: Algorithm 3's per-instruction MAX-|a| distance (§4.4) —
//     zeros overflow a not-yet-covered operation.
//   - Coverage: CoverMe-style penalties (§2 Instance 4) — zeros cover a
//     branch side outside the covered set B.
//   - Characteristic: the flat 0/1 function of Fig. 7, the ablation
//     showing that an ungraded weak distance degenerates MO into random
//     testing.
package instrument

import (
	"math"

	"repro/internal/dd"
	"repro/internal/fp"
)

// Boundary accumulates the boundary value analysis weak distance:
// w starts at 1 and is multiplied by |a-b| at every executed branch
// `a op b` (paper Fig. 3). Its zeros are exactly the inputs that make
// some executed comparison an equality — the boundary values.
//
// With ULP set, |a-b| is replaced by the integer ULP distance, which
// cannot vanish without actual floating-point equality (mitigates
// Limitation 2).
//
// With HighPrecision set, the product is accumulated in scaled
// double-double arithmetic (internal/dd), implementing the paper's
// §5.2 suggestion: a plain float64 product of many small factors can
// underflow to a *spurious* zero (a Limitation 2 defect of the
// multiplicative construction itself); the scaled product is zero iff
// some factor is exactly zero.
type Boundary struct {
	// ULP selects the integer ULP metric instead of |a-b|.
	ULP bool
	// HighPrecision accumulates the product without under/overflow.
	HighPrecision bool
	// Sites, when non-nil, restricts instrumentation to these branch
	// sites (boundary analysis of a subset of conditions).
	Sites map[int]bool

	w  float64
	hp *dd.ScaledProduct
}

// Reset implements rt.Monitor.
func (m *Boundary) Reset() {
	m.w = 1
	if m.HighPrecision {
		if m.hp == nil {
			m.hp = dd.NewScaledProduct()
		}
		m.hp.Reset()
	}
}

// PlainConfig reports whether the monitor runs the default
// configuration — no site filter, |a-b| metric, float64 accumulation —
// whose entire Branch body is the saturated product step that MulFactor
// applies. Batch engines use it to gate a devirtualized per-lane branch
// update: when every lane's monitor is a PlainConfig *Boundary, the
// engine computes the factor itself and calls MulFactor through the
// concrete receiver, eliminating the interface dispatch that dominates
// branch-heavy lane sweeps.
func (m *Boundary) PlainConfig() bool {
	return m.Sites == nil && !m.ULP && !m.HighPrecision
}

// ResetPlain is Reset specialized to the plain configuration: a bare
// store, so devirtualized batch sweeps can reset a whole monitor array
// without interface dispatch. Callers must have checked PlainConfig.
func (m *Boundary) ResetPlain() { m.w = 1 }

// ValuePlain is Value specialized to the plain configuration: a bare
// load. Callers must have checked PlainConfig.
func (m *Boundary) ValuePlain() float64 { return m.w }

// MulFactor folds one branch factor into the plain-configuration
// product: w = min(w*d, MaxFloat). Calling it with the factor
//
//	d := fp.Abs(a - b)
//	if !(d <= fp.MaxFloat) {
//	    d = fp.BoundaryDist(a, b)
//	}
//
// is bit-identical to Branch(site, op, a, b) under PlainConfig. It is
// deliberately tiny so a concrete call site inlines to a load, a
// multiply, a clamp, and a store.
func (m *Boundary) MulFactor(d float64) {
	w := m.w * d
	if w > fp.MaxFloat {
		w = fp.MaxFloat
	}
	m.w = w
}

// Branch implements rt.Monitor.
func (m *Boundary) Branch(site int, op fp.CmpOp, a, b float64) {
	if m.Sites == nil && !m.ULP && !m.HighPrecision {
		// Default configuration, on the per-branch hot path of every
		// boundary analysis: plain |a-b| product with saturation,
		// written so the finite case stays fully inlined. The factors
		// are nonnegative, so w stays nonnegative and the IsInf(w)
		// clamp reduces to a one-sided compare.
		d := fp.Abs(a - b)
		if !(d <= fp.MaxFloat) {
			d = fp.BoundaryDist(a, b) // NaN/Inf operands: cold path
		}
		m.MulFactor(d)
		return
	}
	if m.Sites != nil && !m.Sites[site] {
		return
	}
	var d float64
	if m.ULP {
		d = fp.ULPDist(a, b)
	} else {
		d = fp.BoundaryDist(a, b)
	}
	if m.HighPrecision {
		m.hp.MulFactor(d)
		return
	}
	m.w *= d
	if math.IsInf(m.w, 0) {
		m.w = fp.MaxFloat
	}
}

// FPOp implements rt.Monitor (boundary analysis ignores FP operations).
func (m *Boundary) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor.
func (m *Boundary) Value() float64 {
	if m.HighPrecision {
		return m.hp.Value()
	}
	return m.w
}

// BoundaryWitness records which branch sites were hit exactly on their
// boundary (a == b) during one execution. The analysis layer replays
// reported boundary values under a witness to attribute each value to a
// boundary condition (soundness check (i) of §6.2 and the hit counts of
// Table 2).
type BoundaryWitness struct {
	hits  map[int]int
	order []int
}

// Reset implements rt.Monitor.
func (m *BoundaryWitness) Reset() {
	m.hits = make(map[int]int)
	m.order = m.order[:0]
}

// Branch implements rt.Monitor.
func (m *BoundaryWitness) Branch(site int, op fp.CmpOp, a, b float64) {
	if a == b {
		if m.hits[site] == 0 {
			m.order = append(m.order, site)
		}
		m.hits[site]++
	}
}

// FPOp implements rt.Monitor.
func (m *BoundaryWitness) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor: 0 when some boundary condition was hit,
// making the witness itself a (characteristic-style) weak distance.
func (m *BoundaryWitness) Value() float64 {
	if len(m.hits) > 0 {
		return 0
	}
	return 1
}

// Hits returns the per-site equality counts of the last execution.
func (m *BoundaryWitness) Hits() map[int]int { return m.hits }

// Sites returns the boundary sites hit, in first-hit order.
func (m *BoundaryWitness) Sites() []int { return m.order }
