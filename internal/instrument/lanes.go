// Lane support for the batch evaluation contract.
//
// A lane-parallel sweep (rt.Program.ExecuteBatch over a compiled
// program) drives one monitor instance per lane, so per-lane
// accumulation — identical traces and weak distances to K serial
// runs — falls out of the monitors being ordinary single-execution
// state machines. Two things live here:
//
//   - NewLanes, the helper analyses use to build a monitor bank for a
//     lane-parallel objective (one independent monitor per lane).
//   - rt.FPOpFree declarations for every branch-only monitor. Their
//     FPOp methods are pure no-ops, so a batch engine may skip the
//     per-lane FPOp dispatch on arithmetic instructions — the dominant
//     dispatch cost of a sweep — without changing a single observable.
//     The overflow and non-finite monitors observe FP operations (and
//     request Algorithm-3 early stops), so they deliberately carry no
//     declaration and keep the full dispatch.

package instrument

import "repro/internal/rt"

// NewLanes builds a bank of n independent monitors from a factory, for
// use as the per-lane monitor set of a batched weak-distance sweep.
func NewLanes(n int, mk func() rt.Monitor) []rt.Monitor {
	mons := make([]rt.Monitor, n)
	for i := range mons {
		mons[i] = mk()
	}
	return mons
}

// FPOpFree implements rt.FPOpFree: boundary distances observe branches
// only.
func (m *Boundary) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree.
func (m *BoundaryWitness) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree: coverage distances observe branches
// only.
func (m *Coverage) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree.
func (m *RecordNewSides) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree: path distances observe branches
// only.
func (m *Path) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree.
func (m *PathWitness) FPOpFree() bool { return true }

// FPOpFree implements rt.FPOpFree.
func (m *Characteristic) FPOpFree() bool { return true }

var (
	_ rt.FPOpFree = (*Boundary)(nil)
	_ rt.FPOpFree = (*BoundaryWitness)(nil)
	_ rt.FPOpFree = (*Coverage)(nil)
	_ rt.FPOpFree = (*RecordNewSides)(nil)
	_ rt.FPOpFree = (*Path)(nil)
	_ rt.FPOpFree = (*PathWitness)(nil)
	_ rt.FPOpFree = (*Characteristic)(nil)
)
