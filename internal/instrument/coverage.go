package instrument

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/fp"
)

// Side identifies one direction of a conditional branch.
type Side struct {
	Site  int
	Taken bool
}

// MarshalText encodes the side as "site:t" / "site:f", making
// Side-keyed maps (coverage reports) JSON-serializable.
func (s Side) MarshalText() ([]byte, error) {
	out := strconv.AppendInt(nil, int64(s.Site), 10)
	if s.Taken {
		return append(out, ":t"...), nil
	}
	return append(out, ":f"...), nil
}

// UnmarshalText decodes the MarshalText form.
func (s *Side) UnmarshalText(text []byte) error {
	str := string(text)
	i := strings.IndexByte(str, ':')
	if i < 0 {
		return fmt.Errorf("bad side %q, want site:t or site:f", str)
	}
	site, err := strconv.Atoi(str[:i])
	if err != nil {
		return fmt.Errorf("bad side %q: %v", str, err)
	}
	var taken bool
	switch str[i+1:] {
	case "t":
		taken = true
	case "f":
		taken = false
	default:
		return fmt.Errorf("bad side %q, want site:t or site:f", str)
	}
	s.Site, s.Taken = site, taken
	return nil
}

// Coverage accumulates the branch-coverage weak distance (§2 Instance 4,
// the CoverMe construction [17]): given the set B of branch sides already
// covered, W(x) is zero iff executing on x takes some side outside B.
// While the execution only takes covered sides, every branch whose
// opposite side is still uncovered contributes the branch distance
// toward flipping it, steering the search toward the uncovered frontier.
//
// With ULP set, distances are measured on the ULP scale.
type Coverage struct {
	// Covered is the set B; shared with the analysis driver, which grows
	// it after each successful round.
	Covered map[Side]bool
	// ULP selects the ULP branch distance.
	ULP bool

	w      float64
	hitNew bool
}

// NewCoverage returns a monitor with an empty covered set.
func NewCoverage() *Coverage {
	return &Coverage{Covered: make(map[Side]bool)}
}

// Reset implements rt.Monitor.
func (m *Coverage) Reset() {
	m.w = 0
	m.hitNew = false
}

// Branch implements rt.Monitor.
func (m *Coverage) Branch(site int, op fp.CmpOp, a, b float64) {
	taken := op.Eval(a, b)
	if !m.Covered[Side{site, taken}] {
		m.hitNew = true // this execution covers something new: a solution
		return
	}
	if !m.Covered[Side{site, !taken}] {
		// Opposite side uncovered: add the distance to flipping this
		// branch.
		required := op.Negate()
		var d float64
		if m.ULP {
			d = fp.BranchDistULP(required, a, b)
		} else {
			d = fp.BranchDist(required, a, b)
		}
		m.w += d
		if math.IsInf(m.w, 0) || math.IsNaN(m.w) {
			m.w = fp.MaxFloat
		}
	}
}

// FPOp implements rt.Monitor.
func (m *Coverage) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor: zero iff a new side was taken; otherwise
// the accumulated flip distances, with a positive floor so W never
// vanishes on a non-solution (Def. 3.1(b)).
func (m *Coverage) Value() float64 {
	if m.hitNew {
		return 0
	}
	if m.w > 0 {
		return m.w
	}
	// No uncovered side is adjacent to this execution: flat region.
	return 1
}

// RecordNewSides is a monitor capturing which uncovered sides an
// execution takes. The driver replays a solution under it and merges the
// result into Covered.
type RecordNewSides struct {
	Covered map[Side]bool

	sides []Side
	seen  map[Side]bool
}

// Reset implements rt.Monitor.
func (m *RecordNewSides) Reset() {
	m.sides = m.sides[:0]
	m.seen = make(map[Side]bool)
}

// Branch implements rt.Monitor.
func (m *RecordNewSides) Branch(site int, op fp.CmpOp, a, b float64) {
	s := Side{site, op.Eval(a, b)}
	if !m.Covered[s] && !m.seen[s] {
		m.seen[s] = true
		m.sides = append(m.sides, s)
	}
}

// FPOp implements rt.Monitor.
func (m *RecordNewSides) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor.
func (m *RecordNewSides) Value() float64 {
	if len(m.sides) > 0 {
		return 0
	}
	return 1
}

// Sides returns the newly covered sides in first-hit order.
func (m *RecordNewSides) Sides() []Side { return m.sides }
