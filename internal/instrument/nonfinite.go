package instrument

import (
	"math"

	"repro/internal/fp"
)

// NonFinite accumulates the weak distance of the NaN/domain-error
// finder: it targets executions in which some floating-point operation
// outside the tracked set L produces a non-finite value (NaN or ±Inf —
// the IEEE-754 domain-error signatures the §6.3.2 inconsistency study
// traces back to individual instructions).
//
// It reuses the Algorithm 3 overflow machinery: after every untracked
// operation site l the monitor overwrites
//
//	w = finite(a) ? 1 + (MAX - |a|) : 0
//
// and aborts execution when w hits 0. The distance differs from the
// overflow monitor's in one deliberate way: a *finite* result of
// magnitude MAX (saturation, which Algorithm 3 counts as overflow) is
// not in the target set — w stays at 1 there, so only genuine NaN/Inf
// results terminate the search. Minimization still rides the same
// gradient (grow the magnitude until the cliff), which is how NaNs from
// Inf−Inf, Inf/Inf, and 0·Inf are reached in practice.
type NonFinite struct {
	// L is the set of operation sites already handled. Shared with the
	// analysis driver.
	L map[int]bool

	w        float64
	lastSite int
}

// NewNonFinite returns a monitor with an empty tracked set.
func NewNonFinite() *NonFinite {
	return &NonFinite{L: make(map[int]bool)}
}

// Reset implements rt.Monitor.
func (m *NonFinite) Reset() {
	m.w = 1
	m.lastSite = -1
}

// Branch implements rt.Monitor (domain-error detection ignores
// branches).
func (m *NonFinite) Branch(int, fp.CmpOp, float64, float64) {}

// FPOp implements rt.Monitor.
func (m *NonFinite) FPOp(site int, v float64) bool {
	if m.L[site] {
		return false // behaves like a no-op once tracked
	}
	m.lastSite = site
	if math.IsNaN(v) || math.IsInf(v, 0) {
		m.w = 0
		return true
	}
	m.w = 1 + (fp.MaxFloat - fp.Abs(v))
	return false
}

// Value implements rt.Monitor.
func (m *NonFinite) Value() float64 { return m.w }

// LastSite returns the operation site the previous execution
// effectively targeted (the last executed untracked site); -1 when
// every executed operation was already tracked.
func (m *NonFinite) LastSite() int { return m.lastSite }
