package instrument

import (
	"math"

	"repro/internal/fp"
)

// Decision is one step of a target path: the branch site and the outcome
// the path requires there.
type Decision struct {
	Site  int
	Taken bool
}

// Path accumulates the path-reachability weak distance (paper §4.3):
// w starts at 0; at each branch the path constrains, w receives the
// branch distance θ toward the required outcome (0 when the execution
// already goes the required way). Structural divergence — target
// decisions never reached because execution left the path — contributes
// one unit each (the classic approach-level term), keeping w positive
// whenever the path is not followed in full.
//
// With ULP set, θ is measured on the integer ULP scale (Limitation-2
// mitigation).
type Path struct {
	// Target is the ordered sequence of required branch decisions.
	Target []Decision
	// ULP selects the ULP branch distance.
	ULP bool

	w    float64
	next int // index into Target of the next expected decision
}

// Reset implements rt.Monitor.
func (m *Path) Reset() {
	m.w = 0
	m.next = 0
}

// Branch implements rt.Monitor.
func (m *Path) Branch(site int, op fp.CmpOp, a, b float64) {
	if m.next >= len(m.Target) {
		return // path already fully matched; suffix unconstrained
	}
	d := m.Target[m.next]
	if d.Site != site {
		return // not a constrained site at this position; keep waiting
	}
	m.next++
	required := op
	if !d.Taken {
		required = op.Negate()
	}
	var dist float64
	if m.ULP {
		dist = fp.BranchDistULP(required, a, b)
	} else {
		dist = fp.BranchDist(required, a, b)
	}
	m.w += dist
	if math.IsInf(m.w, 0) || math.IsNaN(m.w) {
		m.w = fp.MaxFloat
	}
}

// FPOp implements rt.Monitor.
func (m *Path) FPOp(int, float64) bool { return false }

// Value implements rt.Monitor: the accumulated branch distances plus one
// unit per target decision the execution never reached.
func (m *Path) Value() float64 {
	missing := float64(len(m.Target) - m.next)
	v := m.w + missing
	if v < 0 || math.IsNaN(v) {
		return fp.MaxFloat
	}
	return v
}
