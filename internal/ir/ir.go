// Package ir defines the three-address intermediate representation that
// FPL programs are lowered to before interpretation. The IR mirrors the
// property the paper relies on at the LLVM level (§4.4): every
// floating-point operation is exactly one instruction, so the
// instrumentation sites of Algorithm 3 — "inject after each floating-
// point operation l" — are well defined. Likewise every floating-point
// comparison is one FCmp instruction, giving the branch sites that the
// boundary (§4.2) and path (§4.3) weak distances instrument.
//
// Functions are graphs of basic blocks over a flat virtual register
// file; the representation is deliberately not SSA — the interpreter in
// internal/interp executes registers directly, and no optimization is
// performed (analyses must observe the program as written).
package ir

import (
	"fmt"

	"repro/internal/builtins"
	"repro/internal/fp"
	"repro/internal/lang"
	"repro/internal/rt"
)

// Reg is a virtual register index within a function frame.
type Reg int

// RegKind is the runtime kind of a register.
type RegKind uint8

// Register kinds.
const (
	RegF RegKind = iota // float64
	RegB                // bool
)

// Opcode enumerates IR instructions.
type Opcode uint8

// Instruction opcodes.
const (
	// ConstF: Dst = Val.
	ConstF Opcode = iota
	// ConstB: Dst = BVal.
	ConstB
	// Mov: Dst = A (same kind).
	Mov
	// FAdd, FSub, FMul, FDiv: Dst = A op B. Floating-point operation
	// sites (observed via Site).
	FAdd
	FSub
	FMul
	FDiv
	// FNeg: Dst = -A. Sign flips are exact, so FNeg is not an
	// overflow-observable site, but it is still a distinct instruction.
	FNeg
	// FCmp: Dst(bool) = A Pred B. Branch-condition site (observed via
	// Site).
	FCmp
	// Not: Dst(bool) = !A.
	Not
	// Call: Dst = Name(Args...) for user functions; Dst < 0 for void
	// calls.
	Call
	// CallBuiltin: Dst = Name(Args...) for math builtins. The result is
	// a floating-point operation site (library calls can overflow).
	CallBuiltin
	// Jmp: unconditional jump to block Target.
	Jmp
	// CondJmp: jump to Target when A holds, else to Else.
	CondJmp
	// Ret: return A (Reg < 0 when the function returns nothing).
	Ret
	// Assert: record an assertion outcome of condition A.
	Assert
)

var opcodeNames = [...]string{
	ConstF: "constf", ConstB: "constb", Mov: "mov",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FCmp: "fcmp", Not: "not",
	Call: "call", CallBuiltin: "callb",
	Jmp: "jmp", CondJmp: "condjmp", Ret: "ret", Assert: "assert",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsFPArith reports whether the opcode is an arithmetic floating-point
// operation site in the sense of Algorithm 3.
func (o Opcode) IsFPArith() bool {
	switch o {
	case FAdd, FSub, FMul, FDiv, CallBuiltin:
		return true
	}
	return false
}

// NoSite marks instructions without an instrumentation site.
const NoSite = -1

// Instr is one IR instruction. Fields are used per-opcode as documented
// on the opcodes.
type Instr struct {
	Op   Opcode
	Dst  Reg
	A, B Reg
	Val  float64  // ConstF immediate
	BVal bool     // ConstB immediate
	Pred fp.CmpOp // FCmp predicate
	Name string   // Call/CallBuiltin callee
	Args []Reg    // Call/CallBuiltin arguments

	// Site is the module-wide instrumentation site: an FP-operation
	// site for arithmetic and builtin calls, a branch site for FCmp,
	// NoSite otherwise.
	Site int

	// Callee caches the resolved *Func for Call instructions so
	// execution engines never pay a map lookup per call. Lower fills it
	// via Module.Link; hand-built modules should call Link themselves.
	Callee *Func
	// Fn1 and Fn2 cache the resolved implementation for CallBuiltin
	// instructions (exactly one is non-nil, matching the arity).
	// Resolution happens at lowering time, making an unknown builtin a
	// compile-time error rather than a runtime panic.
	Fn1 func(float64) float64
	Fn2 func(float64, float64) float64

	// Target and Else are block indices for Jmp/CondJmp.
	Target, Else int

	// Pos is the source position; Label the source text used in site
	// tables.
	Pos   lang.Pos
	Label string
}

// Block is a basic block: straight-line instructions terminated by a
// jump or return (enforced by Verify).
type Block struct {
	Instrs []Instr
}

// RetKind describes what a function returns.
type RetKind uint8

// Return kinds.
const (
	RetNone RetKind = iota // void
	RetF                   // double
	RetB                   // bool
)

// Func is an IR function.
type Func struct {
	Name string
	// NParams parameters arrive in registers 0..NParams-1 (all double).
	NParams int
	// Ret is the function's return kind.
	Ret RetKind
	// Blocks; entry is block 0.
	Blocks []Block
	// Kinds gives the kind of every register in the frame.
	Kinds []RegKind
}

// NumRegs returns the frame size.
func (f *Func) NumRegs() int { return len(f.Kinds) }

// Module is a compiled FPL file: functions plus the module-wide
// instrumentation site tables.
type Module struct {
	Funcs map[string]*Func
	// Order preserves declaration order for printing.
	Order []string
	// OpSites inventories every floating-point operation site (the set
	// L̄ of §4.4).
	OpSites []rt.OpInfo
	// BranchSites inventories every branch-condition site.
	BranchSites []rt.BranchInfo
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	return m.Funcs[name]
}

// Link resolves the cached execution pointers of every instruction:
// Call instructions get their Callee, CallBuiltin instructions their
// Fn1/Fn2 implementation. Lower calls Link automatically; modules built
// by hand must call it before execution. Unknown callees or builtins
// are reported as errors.
func (m *Module) Link() error {
	for _, name := range m.Order {
		f := m.Funcs[name]
		if f == nil {
			return fmt.Errorf("ir: order lists unknown function %s", name)
		}
		for bi := range f.Blocks {
			instrs := f.Blocks[bi].Instrs
			for ii := range instrs {
				in := &instrs[ii]
				switch in.Op {
				case Call:
					in.Callee = m.Funcs[in.Name]
					if in.Callee == nil {
						return fmt.Errorf("ir: %s calls unknown function %s", name, in.Name)
					}
				case CallBuiltin:
					fn1, fn2, err := builtins.Resolve(in.Name, len(in.Args))
					if err != nil {
						return fmt.Errorf("ir: %s: %w", name, err)
					}
					in.Fn1, in.Fn2 = fn1, fn2
				}
			}
		}
	}
	return nil
}

// Verify checks structural invariants of the module: blocks terminate
// exactly once, jump targets are in range, register indices and kinds
// are consistent, and site identifiers are dense and in range. Lowering
// bugs surface here rather than as interpreter panics.
func (m *Module) Verify() error {
	for _, name := range m.Order {
		f := m.Funcs[name]
		if f == nil {
			return fmt.Errorf("ir: order lists unknown function %s", name)
		}
		if err := m.verifyFunc(f); err != nil {
			return fmt.Errorf("ir: function %s: %w", name, err)
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Func) error {
	if f.NParams > f.NumRegs() {
		return fmt.Errorf("frame smaller than parameter count")
	}
	for i := 0; i < f.NParams; i++ {
		if f.Kinds[i] != RegF {
			return fmt.Errorf("parameter register r%d must be float", i)
		}
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	checkReg := func(r Reg, kind RegKind, what string) error {
		if r < 0 || int(r) >= f.NumRegs() {
			return fmt.Errorf("%s register r%d out of range", what, r)
		}
		if f.Kinds[r] != kind {
			return fmt.Errorf("%s register r%d has kind %d, want %d", what, r, f.Kinds[r], kind)
		}
		return nil
	}
	checkBlock := func(b int) error {
		if b < 0 || b >= len(f.Blocks) {
			return fmt.Errorf("jump target block %d out of range", b)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d empty", bi)
		}
		for ii, in := range b.Instrs {
			last := ii == len(b.Instrs)-1
			isTerm := in.Op == Jmp || in.Op == CondJmp || in.Op == Ret
			if last != isTerm {
				return fmt.Errorf("block b%d instr %d (%s): terminator placement", bi, ii, in.Op)
			}
			var err error
			switch in.Op {
			case ConstF:
				err = checkReg(in.Dst, RegF, "dst")
			case ConstB:
				err = checkReg(in.Dst, RegB, "dst")
			case Mov:
				if e := checkReg(in.Dst, f.kindOf(in.A), "dst"); e != nil {
					err = e
				} else {
					err = checkRegAny(f, in.A, "src")
				}
			case FAdd, FSub, FMul, FDiv:
				err = firstErr(
					checkReg(in.Dst, RegF, "dst"),
					checkReg(in.A, RegF, "a"),
					checkReg(in.B, RegF, "b"),
					m.checkOpSite(in.Site),
				)
			case FNeg:
				err = firstErr(checkReg(in.Dst, RegF, "dst"), checkReg(in.A, RegF, "a"))
			case FCmp:
				err = firstErr(
					checkReg(in.Dst, RegB, "dst"),
					checkReg(in.A, RegF, "a"),
					checkReg(in.B, RegF, "b"),
					m.checkBranchSite(in.Site),
				)
			case Not:
				err = firstErr(checkReg(in.Dst, RegB, "dst"), checkReg(in.A, RegB, "a"))
			case Call:
				callee := m.Funcs[in.Name]
				if callee == nil {
					err = fmt.Errorf("call to unknown function %s", in.Name)
					break
				}
				if len(in.Args) != callee.NParams {
					err = fmt.Errorf("call to %s with %d args, want %d", in.Name, len(in.Args), callee.NParams)
					break
				}
				for _, a := range in.Args {
					if e := checkReg(a, RegF, "arg"); e != nil {
						err = e
						break
					}
				}
				if err == nil && in.Dst >= 0 {
					switch callee.Ret {
					case RetNone:
						err = fmt.Errorf("call captures result of void function %s", in.Name)
					case RetF:
						err = checkReg(in.Dst, RegF, "dst")
					case RetB:
						err = checkReg(in.Dst, RegB, "dst")
					}
				}
			case CallBuiltin:
				if _, ok := lang.Builtins[in.Name]; !ok {
					err = fmt.Errorf("unknown builtin %s", in.Name)
					break
				}
				for _, a := range in.Args {
					if e := checkReg(a, RegF, "arg"); e != nil {
						err = e
						break
					}
				}
				if err == nil {
					err = firstErr(checkReg(in.Dst, RegF, "dst"), m.checkOpSite(in.Site))
				}
			case Jmp:
				err = checkBlock(in.Target)
			case CondJmp:
				err = firstErr(checkReg(in.A, RegB, "cond"), checkBlock(in.Target), checkBlock(in.Else))
			case Ret:
				if in.A >= 0 {
					switch f.Ret {
					case RetNone:
						err = fmt.Errorf("ret with value in void function")
					case RetF:
						err = checkReg(in.A, RegF, "ret")
					case RetB:
						err = checkReg(in.A, RegB, "ret")
					}
				} else if f.Ret != RetNone {
					err = fmt.Errorf("ret without value in returning function")
				}
			case Assert:
				err = checkReg(in.A, RegB, "cond")
			default:
				err = fmt.Errorf("unknown opcode %d", in.Op)
			}
			if err != nil {
				return fmt.Errorf("block b%d instr %d (%s): %w", bi, ii, in.Op, err)
			}
		}
	}
	return nil
}

func (f *Func) kindOf(r Reg) RegKind {
	if r >= 0 && int(r) < len(f.Kinds) {
		return f.Kinds[r]
	}
	return RegF
}

func checkRegAny(f *Func, r Reg, what string) error {
	if r < 0 || int(r) >= f.NumRegs() {
		return fmt.Errorf("%s register r%d out of range", what, r)
	}
	return nil
}

func (m *Module) checkOpSite(s int) error {
	if s < 0 || s >= len(m.OpSites) {
		return fmt.Errorf("op site %d out of range [0,%d)", s, len(m.OpSites))
	}
	return nil
}

func (m *Module) checkBranchSite(s int) error {
	if s < 0 || s >= len(m.BranchSites) {
		return fmt.Errorf("branch site %d out of range [0,%d)", s, len(m.BranchSites))
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
