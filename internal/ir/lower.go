package ir

import (
	"errors"
	"fmt"

	"repro/internal/fp"
	"repro/internal/lang"
	"repro/internal/rt"
)

// Lower compiles a checked FPL file into an IR module, assigning
// module-wide instrumentation sites to every floating-point operation
// and branch condition. Lower assumes lang.Check succeeded; violations
// surface as errors.
func Lower(file *lang.File) (*Module, error) {
	m := &Module{Funcs: map[string]*Func{}}
	for _, fn := range file.Funcs {
		lf := &lowerer{mod: m, file: file}
		f, err := lf.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		m.Funcs[fn.Name] = f
		m.Order = append(m.Order, fn.Name)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("lowering produced invalid IR: %w", err)
	}
	// Resolve call targets and builtin implementations once, at compile
	// time, so neither execution engine pays name resolution per call —
	// and so an unknown builtin fails compilation here instead of
	// panicking mid-analysis.
	if err := m.Link(); err != nil {
		return nil, err
	}
	return m, nil
}

// Compile parses, checks, and lowers FPL source in one step.
func Compile(src string) (*Module, error) {
	file, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(file); err != nil {
		return nil, err
	}
	return Lower(file)
}

// CompileNamed compiles FPL source read from the named file, decorating
// any front-end diagnostic with the filename so errors render as
// file:line:col: msg. Anonymous sources (Compile) keep the historical
// line:col rendering.
func CompileNamed(name, src string) (*Module, error) {
	m, err := Compile(src)
	if err != nil {
		var le *lang.Error
		if errors.As(err, &le) && le.File == "" {
			le.File = name
			return nil, le
		}
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return m, nil
}

// errfAt builds a typed, position-carrying lowering diagnostic, so
// callers (and CompileNamed) can decorate it with a filename.
func errfAt(pos lang.Pos, format string, args ...any) *lang.Error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type scope struct {
	parent *scope
	vars   map[string]Reg
}

func (s *scope) lookup(name string) (Reg, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if r, ok := sc.vars[name]; ok {
			return r, true
		}
	}
	return -1, false
}

type lowerer struct {
	mod  *Module
	file *lang.File
	fn   *Func
	cur  int // current block index
	sc   *scope
}

func (l *lowerer) newReg(k RegKind) Reg {
	l.fn.Kinds = append(l.fn.Kinds, k)
	return Reg(len(l.fn.Kinds) - 1)
}

func (l *lowerer) newBlock() int {
	l.fn.Blocks = append(l.fn.Blocks, Block{})
	return len(l.fn.Blocks) - 1
}

func (l *lowerer) emit(in Instr) {
	b := &l.fn.Blocks[l.cur]
	b.Instrs = append(b.Instrs, in)
}

// terminated reports whether the current block already ends in a
// terminator.
func (l *lowerer) terminated() bool {
	b := l.fn.Blocks[l.cur]
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case Jmp, CondJmp, Ret:
		return true
	}
	return false
}

func (l *lowerer) newOpSite(pos lang.Pos, label string) int {
	id := len(l.mod.OpSites)
	l.mod.OpSites = append(l.mod.OpSites, rt.OpInfo{
		ID:    id,
		Label: fmt.Sprintf("%s: %s", pos, label),
	})
	return id
}

func (l *lowerer) newBranchSite(pos lang.Pos, label string, op fp.CmpOp) int {
	id := len(l.mod.BranchSites)
	l.mod.BranchSites = append(l.mod.BranchSites, rt.BranchInfo{
		ID:    id,
		Label: fmt.Sprintf("%s: %s", pos, label),
		Op:    op,
	})
	return id
}

func (l *lowerer) lowerFunc(fn *lang.FuncDecl) (*Func, error) {
	l.fn = &Func{
		Name:    fn.Name,
		NParams: len(fn.Params),
		Ret:     retKindOf(fn.RetType),
	}
	l.sc = &scope{vars: map[string]Reg{}}
	for _, p := range fn.Params {
		r := l.newReg(kindOfType(p.Type))
		l.sc.vars[p.Name] = r
	}
	l.newBlock()
	l.cur = 0
	if err := l.lowerBlock(fn.Body); err != nil {
		return nil, err
	}
	if !l.terminated() {
		switch l.fn.Ret {
		case RetF:
			// The checker guarantees all paths return; a fallthrough
			// here is unreachable, but the IR still needs a terminator.
			z := l.newReg(RegF)
			l.emit(Instr{Op: ConstF, Dst: z, Val: 0, Pos: fn.Pos})
			l.emit(Instr{Op: Ret, A: z, Pos: fn.Pos})
		case RetB:
			z := l.newReg(RegB)
			l.emit(Instr{Op: ConstB, Dst: z, BVal: false, Pos: fn.Pos})
			l.emit(Instr{Op: Ret, A: z, Pos: fn.Pos})
		default:
			l.emit(Instr{Op: Ret, A: -1, Pos: fn.Pos})
		}
	}
	return l.fn, nil
}

func retKindOf(t lang.Type) RetKind {
	switch t {
	case lang.Double:
		return RetF
	case lang.Bool:
		return RetB
	}
	return RetNone
}

func kindOfType(t lang.Type) RegKind {
	if t == lang.Bool {
		return RegB
	}
	return RegF
}

func (l *lowerer) lowerBlock(b *lang.BlockStmt) error {
	l.sc = &scope{parent: l.sc, vars: map[string]Reg{}}
	defer func() { l.sc = l.sc.parent }()
	for _, s := range b.Stmts {
		if l.terminated() {
			// Unreachable code after return; lower into a fresh dead
			// block to keep the IR well formed.
			dead := l.newBlock()
			l.cur = dead
		}
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) lowerStmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return l.lowerBlock(s)

	case *lang.VarStmt:
		r := l.newReg(kindOfType(s.Type))
		if s.Init != nil {
			v, err := l.lowerExpr(s.Init)
			if err != nil {
				return err
			}
			l.emit(Instr{Op: Mov, Dst: r, A: v, Pos: s.Pos})
		} else if s.Type == lang.Double {
			l.emit(Instr{Op: ConstF, Dst: r, Val: 0, Pos: s.Pos})
		} else {
			l.emit(Instr{Op: ConstB, Dst: r, BVal: false, Pos: s.Pos})
		}
		l.sc.vars[s.Name] = r
		return nil

	case *lang.AssignStmt:
		r, ok := l.sc.lookup(s.Name)
		if !ok {
			return errfAt(s.Pos, "undefined variable %s", s.Name)
		}
		v, err := l.lowerExpr(s.Expr)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: Mov, Dst: r, A: v, Pos: s.Pos})
		return nil

	case *lang.IfStmt:
		cond, err := l.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		thenB := l.newBlock()
		joinB := l.newBlock()
		elseB := joinB
		if s.Else != nil {
			elseB = l.newBlock()
		}
		l.emit(Instr{Op: CondJmp, A: cond, Target: thenB, Else: elseB, Pos: s.Pos})
		l.cur = thenB
		if err := l.lowerBlock(s.Then); err != nil {
			return err
		}
		if !l.terminated() {
			l.emit(Instr{Op: Jmp, Target: joinB, Pos: s.Pos})
		}
		if s.Else != nil {
			l.cur = elseB
			if err := l.lowerStmt(s.Else); err != nil {
				return err
			}
			if !l.terminated() {
				l.emit(Instr{Op: Jmp, Target: joinB, Pos: s.Pos})
			}
		}
		l.cur = joinB
		return nil

	case *lang.WhileStmt:
		condB := l.newBlock()
		bodyB := l.newBlock()
		exitB := l.newBlock()
		l.emit(Instr{Op: Jmp, Target: condB, Pos: s.Pos})
		l.cur = condB
		cond, err := l.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: CondJmp, A: cond, Target: bodyB, Else: exitB, Pos: s.Pos})
		l.cur = bodyB
		if err := l.lowerBlock(s.Body); err != nil {
			return err
		}
		if !l.terminated() {
			l.emit(Instr{Op: Jmp, Target: condB, Pos: s.Pos})
		}
		l.cur = exitB
		return nil

	case *lang.ReturnStmt:
		if s.Expr == nil {
			l.emit(Instr{Op: Ret, A: -1, Pos: s.Pos})
			return nil
		}
		v, err := l.lowerExpr(s.Expr)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: Ret, A: v, Pos: s.Pos})
		return nil

	case *lang.AssertStmt:
		v, err := l.lowerExpr(s.Expr)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: Assert, A: v, Pos: s.Pos, Label: s.Expr.Text()})
		return nil

	case *lang.ExprStmt:
		_, err := l.lowerExprOrVoid(s.Expr)
		return err
	}
	return errfAt(s.StartPos(), "unhandled statement %T", s)
}

// lowerExprOrVoid lowers an expression allowing void calls (register -1).
func (l *lowerer) lowerExprOrVoid(e lang.Expr) (Reg, error) {
	if call, ok := e.(*lang.CallExpr); ok && !call.Builtin {
		callee := l.file.Func(call.Name)
		if callee != nil && callee.RetType == lang.Invalid {
			args, err := l.lowerArgs(call.Args)
			if err != nil {
				return -1, err
			}
			l.emit(Instr{Op: Call, Dst: -1, Name: call.Name, Args: args, Pos: call.Pos})
			return -1, nil
		}
	}
	return l.lowerExpr(e)
}

func (l *lowerer) lowerArgs(args []lang.Expr) ([]Reg, error) {
	var regs []Reg
	for _, a := range args {
		r, err := l.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		regs = append(regs, r)
	}
	return regs, nil
}

func (l *lowerer) lowerExpr(e lang.Expr) (Reg, error) {
	switch e := e.(type) {
	case *lang.NumberLit:
		r := l.newReg(RegF)
		l.emit(Instr{Op: ConstF, Dst: r, Val: e.Val, Pos: e.Pos})
		return r, nil

	case *lang.BoolLit:
		r := l.newReg(RegB)
		l.emit(Instr{Op: ConstB, Dst: r, BVal: e.Val, Pos: e.Pos})
		return r, nil

	case *lang.Ident:
		r, ok := l.sc.lookup(e.Name)
		if !ok {
			return -1, errfAt(e.Pos, "undefined variable %s", e.Name)
		}
		return r, nil

	case *lang.UnaryExpr:
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return -1, err
		}
		if e.Op == lang.MINUS {
			r := l.newReg(RegF)
			l.emit(Instr{Op: FNeg, Dst: r, A: x, Pos: e.Pos})
			return r, nil
		}
		r := l.newReg(RegB)
		l.emit(Instr{Op: Not, Dst: r, A: x, Pos: e.Pos})
		return r, nil

	case *lang.BinaryExpr:
		switch e.Op {
		case lang.ANDAND, lang.OROR:
			return l.lowerShortCircuit(e)
		case lang.LT, lang.LE, lang.GT, lang.GE, lang.EQ, lang.NE:
			x, err := l.lowerExpr(e.X)
			if err != nil {
				return -1, err
			}
			y, err := l.lowerExpr(e.Y)
			if err != nil {
				return -1, err
			}
			pred := cmpOpOf(e.Op)
			r := l.newReg(RegB)
			site := l.newBranchSite(e.Pos, e.Text(), pred)
			l.emit(Instr{Op: FCmp, Dst: r, A: x, B: y, Pred: pred, Site: site, Pos: e.Pos, Label: e.Text()})
			return r, nil
		default:
			x, err := l.lowerExpr(e.X)
			if err != nil {
				return -1, err
			}
			y, err := l.lowerExpr(e.Y)
			if err != nil {
				return -1, err
			}
			var op Opcode
			switch e.Op {
			case lang.PLUS:
				op = FAdd
			case lang.MINUS:
				op = FSub
			case lang.STAR:
				op = FMul
			case lang.SLASH:
				op = FDiv
			default:
				return -1, errfAt(e.Pos, "bad binary operator %s", e.Op)
			}
			r := l.newReg(RegF)
			site := l.newOpSite(e.Pos, e.Text())
			l.emit(Instr{Op: op, Dst: r, A: x, B: y, Site: site, Pos: e.Pos, Label: e.Text()})
			return r, nil
		}

	case *lang.CallExpr:
		args, err := l.lowerArgs(e.Args)
		if err != nil {
			return -1, err
		}
		if e.Builtin {
			r := l.newReg(RegF)
			site := l.newOpSite(e.Pos, e.Text())
			l.emit(Instr{Op: CallBuiltin, Dst: r, Name: e.Name, Args: args, Site: site, Pos: e.Pos, Label: e.Text()})
			return r, nil
		}
		r := l.newReg(kindOfType(e.Type()))
		l.emit(Instr{Op: Call, Dst: r, Name: e.Name, Args: args, Pos: e.Pos})
		return r, nil
	}
	return -1, errfAt(e.StartPos(), "unhandled expression %T", e)
}

// lowerShortCircuit lowers && and || with real control flow, so the
// right operand (and any comparisons inside it) only executes — and is
// only observed — when the left operand does not decide the result.
func (l *lowerer) lowerShortCircuit(e *lang.BinaryExpr) (Reg, error) {
	res := l.newReg(RegB)
	x, err := l.lowerExpr(e.X)
	if err != nil {
		return -1, err
	}
	l.emit(Instr{Op: Mov, Dst: res, A: x, Pos: e.Pos})
	rhsB := l.newBlock()
	joinB := l.newBlock()
	if e.Op == lang.ANDAND {
		l.emit(Instr{Op: CondJmp, A: res, Target: rhsB, Else: joinB, Pos: e.Pos})
	} else {
		l.emit(Instr{Op: CondJmp, A: res, Target: joinB, Else: rhsB, Pos: e.Pos})
	}
	l.cur = rhsB
	y, err := l.lowerExpr(e.Y)
	if err != nil {
		return -1, err
	}
	l.emit(Instr{Op: Mov, Dst: res, A: y, Pos: e.Pos})
	l.emit(Instr{Op: Jmp, Target: joinB, Pos: e.Pos})
	l.cur = joinB
	return res, nil
}

func cmpOpOf(k lang.Kind) fp.CmpOp {
	switch k {
	case lang.LT:
		return fp.LT
	case lang.LE:
		return fp.LE
	case lang.GT:
		return fp.GT
	case lang.GE:
		return fp.GE
	case lang.EQ:
		return fp.EQ
	case lang.NE:
		return fp.NE
	}
	panic("not a comparison")
}
