package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

const fig2Src = `
func prog(x double) {
    if (x <= 1.0) {
        x = x + 1.0;
    }
    var y double = x * x;
    if (y <= 4.0) {
        x = x - 1.0;
    }
}
`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestCompileFig2Sites(t *testing.T) {
	m := compile(t, fig2Src)
	// Fig. 2 has 3 FP operations (x+1, x*x, x-1) and 2 comparisons.
	if got := len(m.OpSites); got != 3 {
		t.Errorf("op sites = %d, want 3", got)
	}
	if got := len(m.BranchSites); got != 2 {
		t.Errorf("branch sites = %d, want 2", got)
	}
	// Labels carry source text and positions.
	if !strings.Contains(m.BranchSites[0].Label, "x <= 1.0") {
		t.Errorf("branch label = %q", m.BranchSites[0].Label)
	}
	if !strings.Contains(m.OpSites[1].Label, "x * x") {
		t.Errorf("op label = %q", m.OpSites[1].Label)
	}
}

func TestVerifyAcceptsLoweredPrograms(t *testing.T) {
	srcs := []string{
		fig2Src,
		"func f(x double) double { return x; }",
		"func f(x double) double { if (x < 0.0) { return -x; } return x; }",
		"func f(x double) double { var i double = 0.0; while (i < 3.0) { i = i + 1.0; } return i; }",
		"func g(a double) double { return a * a; } func f(x double) double { return g(x) + g(x + 1.0); }",
		"func f(x double) bool { return x < 1.0 && x > -1.0 || x == 5.0; }",
		"func f(x double) double { return pow(fabs(x), 0.5); }",
		"func v(x double) {} func f(x double) { v(x); }",
		"func f(x double) { assert(x < 1e300); }",
		"func f(x double) double { if (x < 0.0) { return 0.0; } else { return 1.0; } }",
	}
	for _, src := range srcs {
		m := compile(t, src)
		if err := m.Verify(); err != nil {
			t.Errorf("Verify(%q): %v", src, err)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	m := compile(t, "func f(x double) double { return x + 1.0; }")
	f := m.Funcs["f"]

	// Out-of-range jump target.
	broken := *m
	saved := f.Blocks[0].Instrs
	f.Blocks[0].Instrs = append([]ir.Instr(nil), saved...)
	f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = ir.Instr{Op: ir.Jmp, Target: 99}
	if err := broken.Verify(); err == nil {
		t.Error("Verify accepted out-of-range jump")
	}
	f.Blocks[0].Instrs = saved

	// Terminator in the middle.
	f.Blocks[0].Instrs = append([]ir.Instr{{Op: ir.Ret, A: 0}}, saved...)
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted mid-block terminator")
	}
	f.Blocks[0].Instrs = saved

	// Bad op site.
	f.Blocks[0].Instrs = append([]ir.Instr(nil), saved...)
	for i := range f.Blocks[0].Instrs {
		if f.Blocks[0].Instrs[i].Op == ir.FAdd {
			f.Blocks[0].Instrs[i].Site = 42
		}
	}
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted out-of-range op site")
	}
	f.Blocks[0].Instrs = saved
}

func TestPrintRoundtripContent(t *testing.T) {
	m := compile(t, fig2Src)
	s := m.String()
	for _, want := range []string{"func prog(r0)", "fadd", "fmul", "fsub", "fcmp <=", "condjmp", "ret", "b0:", "; br#0", "; op#"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed IR missing %q:\n%s", want, s)
		}
	}
}

func TestShortCircuitControlFlow(t *testing.T) {
	// && must lower to control flow: the rhs comparison site must not be
	// observed when the lhs already decides. Structure check: more than
	// one block.
	m := compile(t, "func f(x double) bool { return x < 1.0 && x > -1.0; }")
	if got := len(m.Funcs["f"].Blocks); got < 3 {
		t.Errorf("short-circuit lowered to %d blocks, want >= 3", got)
	}
}

func TestUnreachableCodeAfterReturn(t *testing.T) {
	m := compile(t, `
func f(x double) double {
    return x;
    x = x + 1.0;
    return x;
}`)
	if err := m.Verify(); err != nil {
		t.Errorf("unreachable code broke verification: %v", err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if ir.FAdd.String() != "fadd" || ir.CondJmp.String() != "condjmp" {
		t.Error("opcode names wrong")
	}
	if !ir.FMul.IsFPArith() || ir.FCmp.IsFPArith() || ir.FNeg.IsFPArith() {
		t.Error("IsFPArith misclassifies")
	}
	if !ir.CallBuiltin.IsFPArith() {
		t.Error("builtin calls are FP op sites")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := ir.Compile("func f(x double) { y = 1.0; }"); err == nil {
		t.Error("check error not propagated")
	}
	if _, err := ir.Compile("func f(x double { }"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestModuleFuncLookup(t *testing.T) {
	m := compile(t, "func a(x double) {} func b(x double) {}")
	if m.Func("a") == nil || m.Func("zzz") != nil {
		t.Error("Func lookup broken")
	}
	if len(m.Order) != 2 || m.Order[0] != "a" {
		t.Errorf("Order = %v", m.Order)
	}
}

func TestVerifyRejectsKindViolations(t *testing.T) {
	// Build small invalid functions by hand and check the verifier
	// rejects each class of defect.
	mk := func(mutate func(*ir.Module, *ir.Func)) error {
		m := compile(t, "func f(x double) double { return x + 1.0; }")
		f := m.Funcs["f"]
		mutate(m, f)
		return m.Verify()
	}

	cases := []struct {
		name   string
		mutate func(*ir.Module, *ir.Func)
	}{
		{"float dst for constb", func(m *ir.Module, f *ir.Func) {
			f.Blocks[0].Instrs[0] = ir.Instr{Op: ir.ConstB, Dst: 0} // r0 is RegF
		}},
		{"bool operand for fadd", func(m *ir.Module, f *ir.Func) {
			f.Kinds = append(f.Kinds, ir.RegB)
			for i := range f.Blocks[0].Instrs {
				if f.Blocks[0].Instrs[i].Op == ir.FAdd {
					f.Blocks[0].Instrs[i].A = ir.Reg(len(f.Kinds) - 1)
				}
			}
		}},
		{"out-of-range register", func(m *ir.Module, f *ir.Func) {
			for i := range f.Blocks[0].Instrs {
				if f.Blocks[0].Instrs[i].Op == ir.FAdd {
					f.Blocks[0].Instrs[i].B = 99
				}
			}
		}},
		{"unknown callee", func(m *ir.Module, f *ir.Func) {
			f.Blocks[0].Instrs[0] = ir.Instr{Op: ir.Call, Dst: -1, Name: "ghost"}
		}},
		{"void ret in returning function", func(m *ir.Module, f *ir.Func) {
			last := len(f.Blocks[0].Instrs) - 1
			f.Blocks[0].Instrs[last] = ir.Instr{Op: ir.Ret, A: -1}
		}},
		{"empty block", func(m *ir.Module, f *ir.Func) {
			f.Blocks = append(f.Blocks, ir.Block{})
		}},
		{"branch site on fcmp out of range", func(m *ir.Module, f *ir.Func) {
			f.Kinds = append(f.Kinds, ir.RegB)
			b := ir.Reg(len(f.Kinds) - 1)
			f.Blocks[0].Instrs[0] = ir.Instr{Op: ir.FCmp, Dst: b, A: 0, B: 0, Site: 7}
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: verifier accepted invalid IR", c.name)
		}
	}
}

func TestVerifyCallArityAndVoidCapture(t *testing.T) {
	m := compile(t, `
func v(a double) {}
func g(a double) double { return a; }
func f(x double) double { v(x); return g(x); }`)
	f := m.Funcs["f"]
	// Corrupt the call to g: capture into a bool register.
	f.Kinds = append(f.Kinds, ir.RegB)
	badDst := ir.Reg(len(f.Kinds) - 1)
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			if in.Op == ir.Call && in.Name == "g" {
				in.Dst = badDst
			}
		}
	}
	if err := m.Verify(); err == nil {
		t.Error("bool capture of double call accepted")
	}
	// Restore and corrupt arity instead.
	m2 := compile(t, `
func v(a double) {}
func f(x double) double { v(x); return x; }`)
	f2 := m2.Funcs["f"]
	for bi := range f2.Blocks {
		for ii := range f2.Blocks[bi].Instrs {
			in := &f2.Blocks[bi].Instrs[ii]
			if in.Op == ir.Call {
				in.Args = nil
			}
		}
	}
	if err := m2.Verify(); err == nil {
		t.Error("wrong call arity accepted")
	}
	// Capture of a void function's result.
	m3 := compile(t, `
func v(a double) {}
func f(x double) double { v(x); return x; }`)
	f3 := m3.Funcs["f"]
	for bi := range f3.Blocks {
		for ii := range f3.Blocks[bi].Instrs {
			in := &f3.Blocks[bi].Instrs[ii]
			if in.Op == ir.Call {
				in.Dst = 0
			}
		}
	}
	if err := m3.Verify(); err == nil {
		t.Error("capture of void result accepted")
	}
}

func TestHighwordBuiltinLowering(t *testing.T) {
	m := compile(t, "func f(x double) double { return highword(x); }")
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// The builtin call is an op site (library calls are FP op sites).
	if len(m.OpSites) != 1 {
		t.Errorf("op sites = %d, want 1", len(m.OpSites))
	}
}
