package ir

import (
	"strings"
	"testing"
)

// TestLowerResolvesExecutionPointers checks the compile-time resolution
// satellite: lowered modules carry cached callee pointers and builtin
// implementations, so neither engine resolves names at run time.
func TestLowerResolvesExecutionPointers(t *testing.T) {
	mod, err := Compile(`
func helper(a double) double { return sqrt(a) + pow(a, 2.0); }
func f(x double) double { return helper(x); }
`)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, name := range mod.Order {
		f := mod.Funcs[name]
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				switch in.Op {
				case Call:
					if in.Callee == nil || in.Callee != mod.Funcs[in.Name] {
						t.Errorf("%s: Call %s has unresolved Callee", name, in.Name)
					}
					checked++
				case CallBuiltin:
					if (in.Fn1 == nil) == (in.Fn2 == nil) {
						t.Errorf("%s: CallBuiltin %s/%d not resolved to exactly one pointer",
							name, in.Name, len(in.Args))
					}
					checked++
				}
			}
		}
	}
	if checked != 3 {
		t.Errorf("resolved %d call instructions, want 3", checked)
	}
}

// TestLinkRejectsUnknownBuiltin checks that an unknown builtin in a
// hand-built module is a link-time (compile-time) error, not a runtime
// panic.
func TestLinkRejectsUnknownBuiltin(t *testing.T) {
	f := &Func{
		Name:    "f",
		NParams: 1,
		Ret:     RetF,
		Kinds:   []RegKind{RegF, RegF},
		Blocks: []Block{{Instrs: []Instr{
			{Op: CallBuiltin, Dst: 1, Name: "nope", Args: []Reg{0}, Site: 0},
			{Op: Ret, A: 1},
		}}},
	}
	mod := &Module{Funcs: map[string]*Func{"f": f}, Order: []string{"f"}}
	err := mod.Link()
	if err == nil || !strings.Contains(err.Error(), "unknown builtin") {
		t.Fatalf("Link() = %v, want unknown-builtin error", err)
	}
}
