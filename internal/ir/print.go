package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable assembly-like syntax, e.g.
//
//	func prog(r0) {
//	b0:
//	    r1 = constf 1
//	    r2 = fcmp le r0, r1    ; br#0 2:9: x <= 1.0
//	    condjmp r2, b1, b2
//	...
func (m *Module) String() string {
	var sb strings.Builder
	for i, name := range m.Order {
		if i > 0 {
			sb.WriteByte('\n')
		}
		m.Funcs[name].print(&sb)
	}
	return sb.String()
}

// String renders a single function.
func (f *Func) String() string {
	var sb strings.Builder
	f.print(&sb)
	return sb.String()
}

func (f *Func) print(sb *strings.Builder) {
	params := make([]string, f.NParams)
	for i := range params {
		params[i] = fmt.Sprintf("r%d", i)
	}
	ret := ""
	switch f.Ret {
	case RetF:
		ret = " double"
	case RetB:
		ret = " bool"
	}
	fmt.Fprintf(sb, "func %s(%s)%s {\n", f.Name, strings.Join(params, ", "), ret)
	for bi, b := range f.Blocks {
		fmt.Fprintf(sb, "b%d:\n", bi)
		for _, in := range b.Instrs {
			fmt.Fprintf(sb, "    %s\n", in)
		}
	}
	sb.WriteString("}\n")
}

// String renders one instruction.
func (in Instr) String() string {
	site := func(prefix string) string {
		if in.Site == NoSite {
			return ""
		}
		return fmt.Sprintf("    ; %s#%d %s", prefix, in.Site, in.Label)
	}
	switch in.Op {
	case ConstF:
		return fmt.Sprintf("r%d = constf %g", in.Dst, in.Val)
	case ConstB:
		return fmt.Sprintf("r%d = constb %t", in.Dst, in.BVal)
	case Mov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case FAdd, FSub, FMul, FDiv:
		return fmt.Sprintf("r%d = %s r%d, r%d%s", in.Dst, in.Op, in.A, in.B, site("op"))
	case FNeg:
		return fmt.Sprintf("r%d = fneg r%d", in.Dst, in.A)
	case FCmp:
		return fmt.Sprintf("r%d = fcmp %s r%d, r%d%s", in.Dst, in.Pred, in.A, in.B, site("br"))
	case Not:
		return fmt.Sprintf("r%d = not r%d", in.Dst, in.A)
	case Call, CallBuiltin:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		kind := "call"
		suffix := ""
		if in.Op == CallBuiltin {
			kind = "callb"
			suffix = site("op")
		}
		if in.Dst < 0 {
			return fmt.Sprintf("%s %s(%s)%s", kind, in.Name, strings.Join(args, ", "), suffix)
		}
		return fmt.Sprintf("r%d = %s %s(%s)%s", in.Dst, kind, in.Name, strings.Join(args, ", "), suffix)
	case Jmp:
		return fmt.Sprintf("jmp b%d", in.Target)
	case CondJmp:
		return fmt.Sprintf("condjmp r%d, b%d, b%d", in.A, in.Target, in.Else)
	case Ret:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case Assert:
		return fmt.Sprintf("assert r%d    ; %s", in.A, in.Label)
	}
	return fmt.Sprintf("?%d", in.Op)
}
