package cli

// This file implements SpecFlags, the registry-driven replacement for
// the flag boilerplate the five analysis CLIs used to copy-paste: which
// flags a tool exposes is derived from the analysis' Knobs declaration,
// and parsing them yields a uniform analysis.Spec plus the loaded
// Input. RunTool is the whole body of a thin per-analysis command.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/opt"
	"repro/internal/sat"
)

// SpecFlags binds the shared analysis flags of one tool to a FlagSet.
type SpecFlags struct {
	tool string
	a    analysis.Analysis
	spec analysis.Spec

	builtin string
	fn      string
	bounds  string
	path    string
	engine  string
	lang    string
	// Timeout is the -timeout wall-clock budget (0 = none). Context
	// cancellation lands within one weak-distance evaluation, so the
	// tool renders whatever partial report the analysis had at expiry.
	Timeout time.Duration
	// Stdin substitutes for os.Stdin when reading "-" formulas (tests).
	Stdin io.Reader
}

// NewSpecFlags registers the analysis' flags — exactly the knobs it
// declares — on the FlagSet, with the analysis' spec defaults.
func NewSpecFlags(fs *flag.FlagSet, tool string, a analysis.Analysis) *SpecFlags {
	k := a.Knobs()
	def := a.DefaultSpec()
	sf := &SpecFlags{tool: tool, a: a, spec: def}
	if k.Program {
		fs.StringVar(&sf.builtin, "builtin", "", "built-in program name ("+strings.Join(BuiltinNames(), ", ")+")")
		fs.StringVar(&sf.fn, "func", "", "function to analyze (FPL files)")
		fs.StringVar(&sf.engine, "engine", "", "FPL execution engine: vm or tree (default vm)")
		fs.StringVar(&sf.lang, "lang", "", "source language: fpl or go (default: by file extension, .go = go)")
	}
	fs.Int64Var(&sf.spec.Seed, "seed", def.Seed, "random seed")
	if k.Starts {
		fs.IntVar(&sf.spec.Starts, "starts", def.Starts, "minimization restarts")
	}
	evalsHelp := "weak-distance evaluations per restart"
	if k.Stall || k.Rounds {
		evalsHelp = "evaluations per minimization round"
	}
	if def.Evals == 0 {
		evalsHelp += " (0 = default)"
	}
	fs.IntVar(&sf.spec.Evals, "evals", def.Evals, evalsHelp)
	if k.Stall {
		fs.IntVar(&sf.spec.Stall, "stall", def.Stall, "give up after this many rounds without progress")
	}
	if k.Rounds {
		fs.IntVar(&sf.spec.Rounds, "rounds", def.Rounds, "max rounds (0 = 3x ops)")
	}
	fs.StringVar(&sf.bounds, "bounds", "", "search bounds lo:hi[,lo:hi...]")
	if k.ULP {
		fs.BoolVar(&sf.spec.ULP, "ulp", def.ULP, "use ULP branch distances")
	}
	if k.HighPrecision {
		fs.BoolVar(&sf.spec.HighPrecision, "hp", def.HighPrecision,
			"accumulate multiplicative distances in high precision (no spurious underflow zeros)")
	}
	if k.RealDist {
		fs.BoolVar(&sf.spec.RealDist, "real", def.RealDist, "use real-valued |l-r| atom distances instead of ULP")
	}
	if k.Path {
		fs.StringVar(&sf.path, "path", "", "target path, e.g. 0:t,1:f")
	}
	be := def.Backend
	if be == "" {
		be = "basinhopping"
	}
	fs.StringVar(&sf.spec.Backend, "backend", be, "MO backend ("+strings.Join(opt.BackendNames(), ", ")+")")
	fs.IntVar(&sf.spec.StallWindow, "stall-window", def.StallWindow,
		"portfolio plateau window in evaluations (-backend portfolio; 0 = 400 x dim)")
	fs.Float64Var(&sf.spec.StallRatio, "stall-ratio", def.StallRatio,
		"portfolio minimum relative best-objective decay per window (-backend portfolio; 0 = 0.01)")
	fs.IntVar(&sf.spec.Workers, "workers", def.Workers, "parallelism (0 = all CPUs, 1 = serial)")
	fs.IntVar(&sf.spec.Lanes, "lanes", def.Lanes,
		"batch evaluation width: lane-parallel VM sweep size (0 or 1 = scalar)")
	fs.DurationVar(&sf.Timeout, "timeout", 0,
		"wall-clock budget; on expiry the partial report is rendered (0 = none)")
	return sf
}

// Context returns the run context implied by the parsed flags: a
// -timeout deadline over the parent, or the parent itself. The returned
// cancel func must always be called.
func (sf *SpecFlags) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if sf.Timeout > 0 {
		return context.WithTimeout(parent, sf.Timeout)
	}
	return context.WithCancel(parent)
}

// Resolve finalizes the spec from the parsed flags and positional
// arguments (the FPL source file, or the formula for formula-based
// analyses) and loads the analysis input.
func (sf *SpecFlags) Resolve(args []string) (analysis.Input, analysis.Spec, error) {
	var in analysis.Input
	k := sf.a.Knobs()

	dim := 0
	if k.Formula {
		if len(args) != 1 {
			return in, sf.spec, fmt.Errorf("usage: %s [flags] 'formula' (or - for stdin)", sf.tool)
		}
		src := args[0]
		if src == "-" {
			r := sf.Stdin
			if r == nil {
				r = os.Stdin
			}
			data, err := io.ReadAll(r)
			if err != nil {
				return in, sf.spec, err
			}
			src = strings.TrimSpace(string(data))
		}
		sf.spec.Formula = src
		f, _, err := sat.Parse(src)
		if err != nil {
			return in, sf.spec, err
		}
		dim = f.Dim()
	}
	if k.Program {
		file := ""
		if len(args) > 0 {
			file = args[0]
		}
		eng, err := interp.ParseEngine(sf.engine)
		if err != nil {
			return in, sf.spec, &analysis.SpecError{Field: "engine", Value: sf.engine, Reason: err.Error()}
		}
		p, err := ResolveLang(sf.builtin, file, sf.lang, sf.fn, eng)
		if err != nil {
			return in, sf.spec, err
		}
		in.Program = p
		in.SF = SFForBuiltin(sf.builtin)
		sf.spec.Engine = eng.String()
		dim = p.Dim
	}

	if k.Path {
		target, err := ParsePath(sf.path)
		if err != nil {
			return in, sf.spec, err
		}
		sf.spec.Path = target
	}

	bs, err := ParseBounds(sf.bounds, dim)
	if err != nil {
		return in, sf.spec, err
	}
	sf.spec.Bounds = bs

	return in, sf.spec, nil
}

// RunTool is the entire body of a thin per-analysis command wrapper:
// register the registry-derived flags, parse, load, run, render in the
// tool's historical output format. It returns the process exit code
// (0 ok, 1 error, 2 negative analysis outcome — the legacy contract).
func RunTool(tool, analysisName string, args []string, stdout, stderr io.Writer) int {
	a, err := analysis.Lookup(analysisName)
	if err != nil {
		fmt.Fprintln(stderr, tool+":", err)
		return 1
	}
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := NewSpecFlags(fs, tool, a)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // the historical ExitOnError behavior of -h
		}
		return 2
	}
	in, spec, err := sf.Resolve(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, tool+":", err)
		return 1
	}
	ctx, cancel := sf.Context(context.Background())
	defer cancel()
	rep, err := a.Run(ctx, in, spec)
	if err != nil {
		fmt.Fprintln(stderr, tool+":", err)
		return 1
	}
	rep.Render(stdout, in)
	// The report's own flag, not ctx.Err(): a deadline that fires after
	// the analysis completed must not mislabel a complete report.
	if rep.Interrupted() {
		fmt.Fprintf(stderr, "%s: timeout after %v; partial results above\n", tool, sf.Timeout)
	}
	if rep.Failed() {
		return 2
	}
	return 0
}

// Main wraps RunTool for a command's func main.
func Main(tool, analysisName string) {
	if code := RunTool(tool, analysisName, os.Args[1:], os.Stdout, os.Stderr); code != 0 {
		os.Exit(code)
	}
}
