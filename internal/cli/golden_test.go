package cli_test

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cli"
)

// durationRE matches the wall-clock field of the fpod/nan report
// header, the one nondeterministic byte sequence in the legacy output.
var durationRE = regexp.MustCompile(`evals, \d+\.\d{2}s\)`)

func normalizeDuration(s string) string {
	return durationRE.ReplaceAllString(s, "evals, X.XXs)")
}

// TestLegacyCLIGoldenOutput locks the thin registry wrappers to the
// byte-exact output of the pre-registry per-analysis CLIs: the golden
// files under testdata/golden were captured from the original
// hand-rolled main.go implementations on the same arguments.
func TestLegacyCLIGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is minutes of minimization in -short mode")
	}
	fixture := func(name string) string { return filepath.Join("..", "..", "testdata", name) }
	cases := []struct {
		golden   string
		tool     string
		analysis string
		args     []string
		code     int
	}{
		{"fpbva_fig2", "fpbva", "bva",
			[]string{"-builtin", "fig2", "-seed", "1", "-starts", "4", "-evals", "500", "-bounds", "-100:100"}, 0},
		{"fpbva_fig2fpl", "fpbva", "bva",
			[]string{"-func", "prog", "-seed", "1", "-starts", "4", "-evals", "500", "-bounds", "-100:100", fixture("fig2.fpl")}, 0},
		{"coverme_fig2", "coverme", "coverage",
			[]string{"-builtin", "fig2", "-seed", "2", "-evals", "500", "-bounds", "-1000:1000"}, 0},
		{"coverme_fig2fpl", "coverme", "coverage",
			[]string{"-func", "prog", "-seed", "2", "-evals", "500", "-bounds", "-100:100", fixture("fig2.fpl")}, 0},
		{"fpod_fig2fpl", "fpod", "overflow",
			[]string{"-func", "prog", "-seed", "3", "-evals", "800", fixture("fig2.fpl")}, 0},
		{"fpod_sum3", "fpod", "overflow",
			[]string{"-func", "prog", "-seed", "3", "-evals", "800", fixture("sum3.fpl")}, 0},
		{"fpod_airy", "fpod", "overflow",
			[]string{"-builtin", "airy", "-seed", "1", "-evals", "400", "-workers", "2"}, 0},
		{"fpreach_fig2", "fpreach", "reach",
			[]string{"-builtin", "fig2", "-path", "0:t,1:t", "-bounds", "-1000:1000", "-seed", "1"}, 0},
		{"fpreach_fig2fpl", "fpreach", "reach",
			[]string{"-func", "prog", "-path", "0:t,1:f", "-bounds", "-100:100", "-seed", "1", fixture("fig2.fpl")}, 0},
		{"fpreach_newton", "fpreach", "reach",
			[]string{"-func", "newton_sqrt", "-path", "0:f", "-bounds", "0:100", "-seed", "1", fixture("newton.fpl")}, 0},
		{"xsat_sat", "xsat", "xsat",
			[]string{"-seed", "1", "x < 1 && x + 1 >= 2"}, 0},
		{"xsat_unknown", "xsat", "xsat",
			[]string{"-seed", "1", "-evals", "200", "-bounds", "-1:1", "x*x < 0"}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.golden, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", tc.golden+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			code := cli.RunTool(tc.tool, tc.analysis, tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			got := normalizeDuration(stdout.String())
			if got != normalizeDuration(string(want)) {
				t.Errorf("output diverged from the pre-registry CLI.\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
			if stderr.Len() != 0 {
				t.Errorf("unexpected stderr: %s", stderr.String())
			}
		})
	}
}

// TestSpecFlagsErrors covers the improved flag diagnostics: unknown
// builtins list the valid names, malformed bounds name the offending
// token and its position.
func TestSpecFlagsErrors(t *testing.T) {
	run := func(tool, analysis string, args ...string) (int, string) {
		var stdout, stderr bytes.Buffer
		code := cli.RunTool(tool, analysis, args, &stdout, &stderr)
		return code, stderr.String()
	}

	if code, msg := run("fpbva", "bva", "-builtin", "nope"); code != 1 ||
		!strings.Contains(msg, "unknown builtin") || !strings.Contains(msg, "fig2") {
		t.Errorf("unknown builtin: code %d, stderr %q", code, msg)
	}
	if code, msg := run("fpbva", "bva", "-builtin", "fig2", "-bounds", "1:x"); code != 1 ||
		!strings.Contains(msg, `upper bound "x" is not a number`) {
		t.Errorf("malformed bound: code %d, stderr %q", code, msg)
	}
	if code, msg := run("fpbva", "bva", "-builtin", "fig2", "-bounds", "0:1,2"); code != 1 ||
		!strings.Contains(msg, `bad bound "2" (pair 2 of "0:1,2")`) {
		t.Errorf("bad pair position: code %d, stderr %q", code, msg)
	}
	if code, msg := run("fpbva", "bva", "-builtin", "fig2", "-backend", "nope"); code != 1 ||
		!strings.Contains(msg, "unknown backend") || !strings.Contains(msg, "basinhopping") {
		t.Errorf("unknown backend: code %d, stderr %q", code, msg)
	}
	if code, msg := run("fpreach", "reach", "-builtin", "fig2"); code != 1 ||
		!strings.Contains(msg, "empty path") {
		t.Errorf("empty path: code %d, stderr %q", code, msg)
	}
	if code, msg := run("xsat", "xsat"); code != 1 ||
		!strings.Contains(msg, "usage: xsat") {
		t.Errorf("missing formula: code %d, stderr %q", code, msg)
	}
	// Knob-driven registration: coverage has no -starts flag.
	if code, msg := run("coverme", "coverage", "-starts", "4", "-builtin", "fig2"); code != 2 ||
		!strings.Contains(msg, "-starts") {
		t.Errorf("undeclared knob: code %d, stderr %q", code, msg)
	}
	// -h prints usage and exits 0, like the historical ExitOnError mains.
	if code, msg := run("fpbva", "bva", "-h"); code != 0 || !strings.Contains(msg, "-builtin") {
		t.Errorf("-h: code %d, stderr %q", code, msg)
	}
}
