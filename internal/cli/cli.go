// Package cli carries the shared plumbing of the command-line tools:
// loading FPL programs from disk, resolving built-in benchmark
// programs, and parsing bound/path specifications.
package cli

import (
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/gofront"
	"repro/internal/gsl"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/libm"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/rt"
)

// builtins maps names accepted by -builtin to program constructors.
var builtins = map[string]func() *rt.Program{
	"fig1a":  progs.Fig1a,
	"fig1b":  progs.Fig1b,
	"fig2":   progs.Fig2,
	"eqzero": progs.EqZero,
	"sin":    libm.SinProgram,
	"bessel": gsl.BesselProgram,
	"hyperg": gsl.Hyperg2F0Program,
	"airy":   gsl.AiryAiProgram,
}

// BuiltinNames lists the available built-in programs.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin resolves a built-in program by name.
func Builtin(name string) (*rt.Program, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, analysis.Specf("builtin", name, "unknown builtin %q (available: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return mk(), nil
}

// LoadFPL compiles a source file — FPL, or Go when the path ends in
// .go — and wraps the named function (empty = sole or first function)
// as an instrumentable program.
func LoadFPL(path, fn string) (*interp.Interp, *rt.Program, error) {
	return LoadSource(path, "", fn, interp.DefaultEngine)
}

// LoadFPLEngine is LoadFPL with an explicit execution engine.
func LoadFPLEngine(path, fn string, eng interp.Engine) (*interp.Interp, *rt.Program, error) {
	return LoadSource(path, "", fn, eng)
}

// LoadSource compiles a source file under lang ("fpl" or "go"; empty =
// detect from the path extension, .go meaning Go) and wraps the named
// function as an instrumentable program. Compile errors carry
// file:line:col positions for both languages.
func LoadSource(path, lang, fn string, eng interp.Engine) (*interp.Interp, *rt.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var lg gofront.Lang
	if lang == "" {
		lg = gofront.DetectLang(path)
	} else if lg, err = gofront.ParseLang(lang); err != nil {
		return nil, nil, err
	}
	mod, err := gofront.CompileSource(lg, path, string(src))
	if err != nil {
		return nil, nil, err
	}
	if fn == "" {
		fn = mod.Order[0]
	}
	it := interp.New(mod)
	it.Engine = eng
	p, err := it.Program(fn)
	if err != nil {
		return nil, nil, err
	}
	return it, p, nil
}

// Resolve loads either a built-in (-builtin name) or a source file.
func Resolve(builtin, file, fn string) (*rt.Program, error) {
	return ResolveEngine(builtin, file, fn, interp.DefaultEngine)
}

// ResolveEngine is Resolve with an explicit execution engine for
// source files (built-ins are native ports and ignore it).
func ResolveEngine(builtin, file, fn string, eng interp.Engine) (*rt.Program, error) {
	return ResolveLang(builtin, file, "", fn, eng)
}

// ResolveLang is ResolveEngine with an explicit source language (empty
// = detect from the file extension).
func ResolveLang(builtin, file, lang, fn string, eng interp.Engine) (*rt.Program, error) {
	switch {
	case builtin != "" && file != "":
		return nil, analysis.Specf("program", "", "use either -builtin or a source file, not both")
	case builtin != "":
		return Builtin(builtin)
	case file != "":
		_, p, err := LoadSource(file, lang, fn, eng)
		return p, err
	}
	return nil, analysis.Specf("program", "", "no program: pass -builtin NAME or a source file (builtins: %s)",
		strings.Join(BuiltinNames(), ", "))
}

// SFForBuiltin returns the concrete GSL-convention special function
// behind a built-in program, or nil. It powers the §6.3.2 inconsistency
// replay of the overflow analysis.
func SFForBuiltin(name string) analysis.SFFunc {
	switch name {
	case "bessel":
		return func(x []float64) (gsl.Result, gsl.Status) { return gsl.BesselKnuScaledAsympx(x[0], x[1]) }
	case "hyperg":
		return func(x []float64) (gsl.Result, gsl.Status) { return gsl.Hyperg2F0(x[0], x[1], x[2]) }
	case "airy":
		return func(x []float64) (gsl.Result, gsl.Status) { return gsl.AiryAi(x[0]) }
	}
	return nil
}

// ParseBounds reads "lo:hi[,lo:hi...]" into per-dimension bounds; a
// single pair is broadcast over dim dimensions. Errors name the
// offending token and its position within the spec.
func ParseBounds(spec string, dim int) ([]opt.Bound, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	var bs []opt.Bound
	for i, part := range parts {
		lohi := strings.Split(part, ":")
		if len(lohi) != 2 {
			return nil, analysis.Specf("bounds", spec, "bad bound %q (pair %d of %q), want lo:hi", part, i+1, spec)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(lohi[0]), 64)
		if err != nil {
			return nil, analysis.Specf("bounds", spec, "bad bound %q (pair %d of %q): lower bound %q is not a number", part, i+1, spec, strings.TrimSpace(lohi[0]))
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(lohi[1]), 64)
		if err != nil {
			return nil, analysis.Specf("bounds", spec, "bad bound %q (pair %d of %q): upper bound %q is not a number", part, i+1, spec, strings.TrimSpace(lohi[1]))
		}
		if lo > hi {
			return nil, analysis.Specf("bounds", spec, "bad bound %q (pair %d of %q): lo > hi", part, i+1, spec)
		}
		bs = append(bs, opt.Bound{Lo: lo, Hi: hi})
	}
	if len(bs) == 1 && dim > 1 {
		for len(bs) < dim {
			bs = append(bs, bs[0])
		}
	}
	if len(bs) != dim {
		return nil, analysis.Specf("bounds", spec, "bounds %q: %d bounds for %d dimensions", spec, len(bs), dim)
	}
	return bs, nil
}

// ParsePath reads "site:t,site:f,..." into a decision sequence.
func ParsePath(spec string) ([]instrument.Decision, error) {
	if spec == "" {
		return nil, analysis.Specf("path", "", "empty path; want e.g. 0:t,1:f")
	}
	var ds []instrument.Decision
	for _, part := range strings.Split(spec, ",") {
		sv := strings.Split(strings.TrimSpace(part), ":")
		if len(sv) != 2 {
			return nil, analysis.Specf("path", spec, "bad decision %q, want site:t or site:f", part)
		}
		site, err := strconv.Atoi(sv[0])
		if err != nil {
			return nil, analysis.Specf("path", spec, "bad site in %q: %v", part, err)
		}
		var taken bool
		switch strings.ToLower(sv[1]) {
		case "t", "true", "1":
			taken = true
		case "f", "false", "0":
			taken = false
		default:
			return nil, analysis.Specf("path", spec, "bad outcome in %q, want t or f", part)
		}
		ds = append(ds, instrument.Decision{Site: site, Taken: taken})
	}
	return ds, nil
}

// Backend resolves a backend name through the opt registry.
func Backend(name string) (opt.Minimizer, error) {
	return opt.BackendByName(name)
}
