// Package cli carries the shared plumbing of the command-line tools:
// loading FPL programs from disk, resolving built-in benchmark
// programs, and parsing bound/path specifications.
package cli

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gsl"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libm"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/rt"
)

// builtins maps names accepted by -builtin to program constructors.
var builtins = map[string]func() *rt.Program{
	"fig1a":  progs.Fig1a,
	"fig1b":  progs.Fig1b,
	"fig2":   progs.Fig2,
	"eqzero": progs.EqZero,
	"sin":    libm.SinProgram,
	"bessel": gsl.BesselProgram,
	"hyperg": gsl.Hyperg2F0Program,
	"airy":   gsl.AiryAiProgram,
}

// BuiltinNames lists the available built-in programs.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin resolves a built-in program by name.
func Builtin(name string) (*rt.Program, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("unknown builtin %q (available: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return mk(), nil
}

// LoadFPL compiles an FPL source file and wraps the named function
// (empty = sole or first function) as an instrumentable program.
func LoadFPL(path, fn string) (*interp.Interp, *rt.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	mod, err := ir.Compile(string(src))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if fn == "" {
		fn = mod.Order[0]
	}
	it := interp.New(mod)
	p, err := it.Program(fn)
	if err != nil {
		return nil, nil, err
	}
	return it, p, nil
}

// Resolve loads either a built-in (-builtin name) or an FPL file.
func Resolve(builtin, file, fn string) (*rt.Program, error) {
	switch {
	case builtin != "" && file != "":
		return nil, fmt.Errorf("use either -builtin or a source file, not both")
	case builtin != "":
		return Builtin(builtin)
	case file != "":
		_, p, err := LoadFPL(file, fn)
		return p, err
	}
	return nil, fmt.Errorf("no program: pass -builtin NAME or a source file (builtins: %s)",
		strings.Join(BuiltinNames(), ", "))
}

// ParseBounds reads "lo:hi[,lo:hi...]" into per-dimension bounds; a
// single pair is broadcast over dim dimensions.
func ParseBounds(spec string, dim int) ([]opt.Bound, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	var bs []opt.Bound
	for _, part := range parts {
		lohi := strings.Split(part, ":")
		if len(lohi) != 2 {
			return nil, fmt.Errorf("bad bound %q, want lo:hi", part)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(lohi[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", part, err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(lohi[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", part, err)
		}
		if lo > hi {
			return nil, fmt.Errorf("bad bound %q: lo > hi", part)
		}
		bs = append(bs, opt.Bound{Lo: lo, Hi: hi})
	}
	if len(bs) == 1 && dim > 1 {
		for len(bs) < dim {
			bs = append(bs, bs[0])
		}
	}
	if len(bs) != dim {
		return nil, fmt.Errorf("%d bounds for %d dimensions", len(bs), dim)
	}
	return bs, nil
}

// ParsePath reads "site:t,site:f,..." into a decision sequence.
func ParsePath(spec string) ([]instrument.Decision, error) {
	if spec == "" {
		return nil, fmt.Errorf("empty path; want e.g. 0:t,1:f")
	}
	var ds []instrument.Decision
	for _, part := range strings.Split(spec, ",") {
		sv := strings.Split(strings.TrimSpace(part), ":")
		if len(sv) != 2 {
			return nil, fmt.Errorf("bad decision %q, want site:t or site:f", part)
		}
		site, err := strconv.Atoi(sv[0])
		if err != nil {
			return nil, fmt.Errorf("bad site in %q: %v", part, err)
		}
		var taken bool
		switch strings.ToLower(sv[1]) {
		case "t", "true", "1":
			taken = true
		case "f", "false", "0":
			taken = false
		default:
			return nil, fmt.Errorf("bad outcome in %q, want t or f", part)
		}
		ds = append(ds, instrument.Decision{Site: site, Taken: taken})
	}
	return ds, nil
}

// Backend resolves a backend name.
func Backend(name string) (opt.Minimizer, error) {
	switch strings.ToLower(name) {
	case "", "basinhopping", "bh":
		return &opt.Basinhopping{}, nil
	case "de", "differentialevolution":
		return &opt.DifferentialEvolution{}, nil
	case "powell":
		return &opt.Powell{}, nil
	case "random", "randomsearch":
		return &opt.RandomSearch{}, nil
	case "neldermead", "nm":
		return &opt.NelderMead{}, nil
	case "anneal", "sa", "simulatedannealing":
		return &opt.SimulatedAnnealing{}, nil
	}
	return nil, fmt.Errorf("unknown backend %q (basinhopping, de, powell, random, neldermead, anneal)", name)
}
