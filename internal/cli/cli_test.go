package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/instrument"
)

func TestBuiltinResolution(t *testing.T) {
	for _, name := range BuiltinNames() {
		p, err := Builtin(name)
		if err != nil {
			t.Errorf("Builtin(%q): %v", name, err)
			continue
		}
		if p.Dim < 1 {
			t.Errorf("builtin %q has dim %d", name, p.Dim)
		}
	}
	if _, err := Builtin("nope"); err == nil || !strings.Contains(err.Error(), "available") {
		t.Errorf("unknown builtin error: %v", err)
	}
}

func TestLoadFPL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.fpl")
	src := `
func helper(a double) double { return a * 2.0; }
func main_prog(x double) { if (x < helper(x)) { x = x + 1.0; } }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Named function.
	_, p, err := LoadFPL(path, "main_prog")
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim != 1 || p.Name != "main_prog" {
		t.Errorf("program %q dim %d", p.Name, p.Dim)
	}
	// Default function: the first declared.
	_, p2, err := LoadFPL(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != "helper" {
		t.Errorf("default function %q, want first declared", p2.Name)
	}
	// Errors surface with the path.
	bad := filepath.Join(dir, "bad.fpl")
	os.WriteFile(bad, []byte("func f(x double) { y = 1.0; }"), 0o644)
	if _, _, err := LoadFPL(bad, ""); err == nil || !strings.Contains(err.Error(), "bad.fpl") {
		t.Errorf("compile error without path context: %v", err)
	}
	if _, _, err := LoadFPL(filepath.Join(dir, "missing.fpl"), ""); err == nil {
		t.Error("missing file not reported")
	}
}

func TestResolve(t *testing.T) {
	if _, err := Resolve("fig2", "", ""); err != nil {
		t.Errorf("builtin resolve: %v", err)
	}
	if _, err := Resolve("fig2", "x.fpl", ""); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := Resolve("", "", ""); err == nil {
		t.Error("no source accepted")
	}
}

func TestParseBounds(t *testing.T) {
	bs, err := ParseBounds("-1:2", 1)
	if err != nil || len(bs) != 1 || bs[0].Lo != -1 || bs[0].Hi != 2 {
		t.Errorf("bs=%v err=%v", bs, err)
	}
	// Broadcast.
	bs, err = ParseBounds("-1:2", 3)
	if err != nil || len(bs) != 3 || bs[2].Hi != 2 {
		t.Errorf("broadcast bs=%v err=%v", bs, err)
	}
	// Per-dimension.
	bs, err = ParseBounds("-1:2,0:5", 2)
	if err != nil || bs[1].Lo != 0 || bs[1].Hi != 5 {
		t.Errorf("per-dim bs=%v err=%v", bs, err)
	}
	// Empty means nil.
	if bs, err := ParseBounds("", 2); err != nil || bs != nil {
		t.Errorf("empty bounds: %v %v", bs, err)
	}
	// Errors.
	for _, spec := range []string{"1", "a:b", "2:1", "-1:2,0:5,3:4"} {
		if _, err := ParseBounds(spec, 2); err == nil {
			t.Errorf("ParseBounds(%q): expected error", spec)
		}
	}
}

func TestParsePath(t *testing.T) {
	ds, err := ParsePath("0:t,1:f,2:true,3:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []instrument.Decision{
		{Site: 0, Taken: true}, {Site: 1, Taken: false},
		{Site: 2, Taken: true}, {Site: 3, Taken: false},
	}
	if len(ds) != len(want) {
		t.Fatalf("ds=%v", ds)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("decision %d: %v, want %v", i, ds[i], want[i])
		}
	}
	for _, spec := range []string{"", "0", "x:t", "0:maybe"} {
		if _, err := ParsePath(spec); err == nil {
			t.Errorf("ParsePath(%q): expected error", spec)
		}
	}
}

func TestBackend(t *testing.T) {
	for _, name := range []string{"", "basinhopping", "bh", "de", "powell", "random", "nm", "sa"} {
		if _, err := Backend(name); err != nil {
			t.Errorf("Backend(%q): %v", name, err)
		}
	}
	if _, err := Backend("gradient-descent"); err == nil {
		t.Error("unknown backend accepted")
	}
}
