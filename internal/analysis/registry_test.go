package analysis_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/rt"
)

func TestRegistryContents(t *testing.T) {
	want := []string{"bva", "coverage", "overflow", "reach", "xsat", "nan"}
	got := analysis.Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	for _, a := range analysis.All() {
		if a.DefaultSpec().Analysis != a.Name() {
			t.Errorf("%s: DefaultSpec names %q", a.Name(), a.DefaultSpec().Analysis)
		}
		if a.Describe() == "" {
			t.Errorf("%s: empty description", a.Name())
		}
		k := a.Knobs()
		if k.Program == k.Formula {
			t.Errorf("%s: wants program=%v formula=%v; exactly one input kind expected",
				a.Name(), k.Program, k.Formula)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for alias, canon := range map[string]string{
		"bva": "bva", "boundary": "bva", "fpbva": "bva", "BVA": "bva",
		"coverme": "coverage", "cover": "coverage",
		"fpod": "overflow", "fpreach": "reach", "path": "reach",
		"sat": "xsat", "nonfinite": "nan", "domain": "nan",
	} {
		a, err := analysis.Lookup(alias)
		if err != nil {
			t.Errorf("Lookup(%q): %v", alias, err)
			continue
		}
		if a.Name() != canon {
			t.Errorf("Lookup(%q) = %s, want %s", alias, a.Name(), canon)
		}
	}
	_, err := analysis.Lookup("nope")
	if err == nil || !strings.Contains(err.Error(), "available: bva, coverage") {
		t.Errorf("unknown-analysis error should list the registry: %v", err)
	}
}

func TestRegistryRunErrors(t *testing.T) {
	spec := func(name string) analysis.Spec {
		a, err := analysis.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return a.DefaultSpec()
	}
	cases := []struct {
		name string
		in   analysis.Input
		spec analysis.Spec
		want string
	}{
		{"bva", analysis.Input{}, spec("bva"), "no program"},
		{"coverage", analysis.Input{}, spec("coverage"), "no program"},
		{"reach", analysis.Input{Program: progs.Fig2()}, spec("reach"), "empty path"},
		{"xsat", analysis.Input{}, spec("xsat"), "empty formula"},
		{"xsat", analysis.Input{}, withFormula(spec("xsat"), "x <"), "expected expression"},
		{"nan", analysis.Input{Program: progs.Fig2()},
			withBackend(spec("nan"), "nope"), "unknown backend"},
	}
	for _, tc := range cases {
		a, err := analysis.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = a.Run(context.Background(), tc.in, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func withFormula(s analysis.Spec, f string) analysis.Spec { s.Formula = f; return s }
func withBackend(s analysis.Spec, b string) analysis.Spec { s.Backend = b; return s }

// TestNaNAnalysis exercises the registry's sixth analysis end to end on
// the native fig2 program: x*x overflows to +Inf for huge x, which the
// non-finite hunt must find and classify.
func TestNaNAnalysis(t *testing.T) {
	a, err := analysis.Lookup("nan")
	if err != nil {
		t.Fatal(err)
	}
	spec := a.DefaultSpec()
	spec.Evals = 2000
	spec.Workers = 1
	rep, err := a.Run(context.Background(), analysis.Input{Program: progs.Fig2()}, spec)
	if err != nil {
		t.Fatal(err)
	}
	nf, ok := rep.(*analysis.NonFiniteReport)
	if !ok {
		t.Fatalf("report type %T", rep)
	}
	if len(nf.Findings) == 0 {
		t.Fatal("no non-finite findings on fig2")
	}
	for _, f := range nf.Findings {
		if f.Class != "NaN" && f.Class != "+Inf" && f.Class != "-Inf" {
			t.Errorf("finding at op %d: class %q", f.Site, f.Class)
		}
		if f.Label == "" {
			t.Errorf("finding at op %d: no label", f.Site)
		}
	}
	if rep.Failed() {
		t.Error("nan reports are informational; Failed must be false")
	}
	var buf bytes.Buffer
	rep.Render(&buf, analysis.Input{Program: progs.Fig2()})
	if !strings.Contains(buf.String(), "non-finite values") {
		t.Errorf("render: %q", buf.String())
	}
}

// TestNonFiniteExcludesSaturation pins the one deliberate difference
// from the overflow distance: a finite result of magnitude MAX is an
// overflow finding but NOT a non-finite finding.
func TestNonFiniteExcludesSaturation(t *testing.T) {
	max := math.MaxFloat64
	p := &rt.Program{
		Name: "saturate",
		Dim:  1,
		Ops:  []rt.OpInfo{{ID: 0, Label: "clamp"}},
		Run: func(ctx *rt.Ctx, x []float64) {
			v := x[0]
			if v > max {
				v = max
			} else if v < -max {
				v = -max
			}
			ctx.Op(0, v) // always finite, reaches ±MAX exactly
		},
	}
	mon := instrument.NewNonFinite()
	if w := p.Execute(mon, []float64{max}); w == 0 {
		t.Errorf("saturated MAX counted as non-finite (w=%v)", w)
	}
	ov := instrument.NewOverflow()
	if w := p.Execute(ov, []float64{max}); w != 0 {
		t.Errorf("saturated MAX must still count as overflow (w=%v)", w)
	}
	if w := p.Execute(mon, []float64{math.NaN()}); w != 0 {
		t.Errorf("NaN input through identity op: w=%v, want 0", w)
	}
}

// TestReportsSerializable: every program analysis report round-trips
// through JSON (the fpserve contract).
func TestReportsSerializable(t *testing.T) {
	p := progs.Fig2()
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	specs := []analysis.Spec{
		{Analysis: "bva", Seed: 1, Starts: 2, Evals: 200, Workers: 1, Bounds: bounds},
		{Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2, Workers: 1, Bounds: bounds},
		{Analysis: "overflow", Seed: 3, Evals: 300, Rounds: 4, Workers: 1},
		{Analysis: "nan", Seed: 5, Evals: 300, Rounds: 4, Workers: 1},
		{Analysis: "reach", Seed: 4, Starts: 2, Evals: 300, Workers: 1, Bounds: bounds,
			Path: []instrument.Decision{{Site: 0, Taken: true}}},
		{Analysis: "xsat", Seed: 1, Starts: 2, Evals: 300, Workers: 1,
			Bounds: []opt.Bound{{Lo: -4, Hi: 4}}, Formula: "x < 1 && x + 1 >= 2"},
	}
	for _, s := range specs {
		a, err := analysis.Lookup(s.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		in := analysis.Input{}
		if a.Knobs().Program {
			in.Program = p
		}
		rep, err := a.Run(context.Background(), in, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Analysis, err)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Errorf("%s report not JSON-serializable: %v", s.Analysis, err)
		}
		if rep.Summary() == "" {
			t.Errorf("%s: empty summary", s.Analysis)
		}
	}
}
