package analysis_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/progs"
)

// TestLanesDeterminism is the batch-contract table test, the Lanes twin
// of TestWorkersDeterminism: for a fixed seed, every analysis client
// must report identical findings with Lanes=0 (the historical scalar
// path) and Lanes=8 (lane-parallel VM sweeps through Config.Batch).
// The interpreter-backed program exercises the real batch engine; the
// native port exercises the serial ExecuteBatch fallback — both must be
// invisible in the reports.
func TestLanesDeterminism(t *testing.T) {
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	for _, pr := range []struct {
		name string
	}{{"native"}, {"interp"}} {
		p := progs.Fig2()
		if pr.name == "interp" {
			p = compileFig2(t)
		}
		t.Run("boundary/"+pr.name, func(t *testing.T) {
			run := func(lanes int) *analysis.BoundaryReport {
				return analysis.BoundaryValues(context.Background(), p, analysis.BoundaryOptions{
					Seed: 11, Starts: 8, EvalsPerStart: 1000, Bounds: bounds,
					Workers: 1, Lanes: lanes,
				})
			}
			scalar, batched := run(0), run(8)
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("boundary reports differ:\nscalar  %+v\nbatched %+v", scalar, batched)
			}
			if scalar.BoundaryValues == 0 {
				t.Error("no boundary values found (vacuous comparison)")
			}
		})
		t.Run("coverage/"+pr.name, func(t *testing.T) {
			run := func(lanes int) *analysis.CoverReport {
				return analysis.Cover(context.Background(), p, analysis.CoverOptions{
					Seed: 12, EvalsPerRound: 1000, Bounds: bounds,
					Workers: 1, Lanes: lanes,
				})
			}
			scalar, batched := run(0), run(8)
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("cover reports differ:\nscalar  %+v\nbatched %+v", scalar, batched)
			}
			if scalar.Ratio() != 1 {
				t.Errorf("coverage %v (vacuous comparison)", scalar.Ratio())
			}
		})
		t.Run("overflow/"+pr.name, func(t *testing.T) {
			run := func(lanes int) *analysis.OverflowReport {
				rep := analysis.DetectOverflows(context.Background(), p, analysis.OverflowOptions{
					Seed: 13, EvalsPerRound: 1500, Workers: 1, Lanes: lanes,
				})
				rep.Duration = 0 // wall clock is the one legitimately varying field
				return rep
			}
			scalar, batched := run(0), run(8)
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("overflow reports differ:\nscalar  %+v\nbatched %+v", scalar, batched)
			}
			if len(scalar.Findings) == 0 {
				t.Error("no overflows found (vacuous comparison)")
			}
		})
		t.Run("nan/"+pr.name, func(t *testing.T) {
			run := func(lanes int) *analysis.NonFiniteReport {
				rep := analysis.FindNonFinite(context.Background(), p, analysis.NonFiniteOptions{
					Seed: 15, EvalsPerRound: 1500, Workers: 1, Lanes: lanes,
				})
				rep.Duration = 0
				return rep
			}
			scalar, batched := run(0), run(8)
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("nan reports differ:\nscalar  %+v\nbatched %+v", scalar, batched)
			}
		})
		t.Run("reach/"+pr.name, func(t *testing.T) {
			// x <= 1 taken, y <= 4 not taken: (x+1)^2 > 4, i.e. x < -3.
			target := []instrument.Decision{
				{Site: 0, Taken: true},
				{Site: 1, Taken: false},
			}
			run := func(lanes int) core.Result {
				return analysis.ReachPath(context.Background(), p, target, analysis.ReachOptions{
					Seed: 14, Starts: 8, EvalsPerStart: 2000, Bounds: bounds,
					Workers: 1, Lanes: lanes,
				})
			}
			scalar, batched := run(0), run(8)
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("reach results differ:\nscalar  %+v\nbatched %+v", scalar, batched)
			}
			if !scalar.Found {
				t.Error("path not reached (vacuous comparison)")
			}
		})
	}
}
