package analysis

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// CoverOptions configures Cover.
type CoverOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// EvalsPerRound bounds evaluations per minimization round; zero
	// selects 4000.
	EvalsPerRound int
	// MaxStall stops after this many consecutive rounds without new
	// coverage; zero selects 6.
	MaxStall int
	// Backend is the MO backend; nil selects Basinhopping.
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// ULP selects ULP branch distances.
	ULP bool
	// Workers sets the parallelism: 0 selects runtime.NumCPU(), 1
	// forces the serial loop. Rounds have a sequential dependency (each
	// round's weak distance is built over the covered set left by the
	// previous one), so parallelism is speculative: Workers rounds are
	// minimized concurrently against a snapshot of the covered set, and
	// speculative results are discarded the moment a consumed round
	// changes the set. The report is therefore identical for every
	// Workers value; speculation pays off in the stall phase, where
	// rounds leave the set unchanged.
	Workers int
	// Lanes sets the batch evaluation width: each round's weak distance
	// evaluates candidate batches as lane-parallel VM sweeps of up to
	// Lanes inputs. 0 or 1 keeps the scalar path; the report is
	// identical for every value.
	Lanes int
}

func (o CoverOptions) evalsPerRound() int {
	if o.EvalsPerRound > 0 {
		return o.EvalsPerRound
	}
	return 4000
}

func (o CoverOptions) maxStall() int {
	if o.MaxStall > 0 {
		return o.MaxStall
	}
	return 6
}

func (o CoverOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o CoverOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// CoverReport is the result of branch-coverage testing.
type CoverReport struct {
	// Covered lists the covered branch sides.
	Covered []instrument.Side
	// Total is 2 × number of branch sites (each site has two sides).
	Total int
	// Inputs maps each covered side to the input that first covered it.
	Inputs map[instrument.Side][]float64
	// Rounds and Evals account for the search effort (consumed rounds
	// only; discarded speculative rounds are not charged).
	Rounds int
	Evals  int
	// Canceled reports the analysis was cut short by context
	// cancellation; Covered holds whatever had been reached by then.
	Canceled bool `json:"canceled,omitempty"`
}

// Ratio returns covered/total.
func (r *CoverReport) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(len(r.Covered)) / float64(r.Total)
}

// Cover implements branch-coverage-based testing (§2 Instance 4, the
// CoverMe construction): it grows the covered set B by repeatedly
// minimizing the coverage weak distance, which is zero exactly on
// inputs taking some branch side outside B.
func Cover(ctx context.Context, p *rt.Program, o CoverOptions) *CoverReport {
	covered := map[instrument.Side]bool{}
	rep := &CoverReport{
		Total:  2 * len(p.Branches),
		Inputs: map[instrument.Side][]float64{},
	}

	backend := o.backend()
	rec := &instrument.RecordNewSides{Covered: covered}
	stall := 0
	for stall < o.maxStall() && len(covered) < rep.Total {
		if ctx.Err() != nil {
			rep.Canceled = true
			break
		}
		// Launch a batch of speculative rounds against a read-only
		// snapshot of the covered set. Slot j corresponds to serial
		// round rep.Rounds+1+j and uses that round's historical seed.
		snapshot := make(map[instrument.Side]bool, len(covered))
		for s := range covered {
			snapshot[s] = true
		}
		batch := opt.ParallelStarts(backend, func(int) opt.Objective {
			inst := p.Instance()
			mon := &instrument.Coverage{Covered: snapshot, ULP: o.ULP}
			return opt.Objective(inst.WeakDistance(mon))
		}, p.Dim, opt.ParallelConfig{
			Starts:     o.workers(),
			Workers:    o.Workers,
			Seed:       o.Seed + int64(rep.Rounds+1)*15485863,
			SeedStride: 15485863,
			MaxEvals:   o.evalsPerRound(),
			Bounds:     o.Bounds,
			StopAtZero: true,
			Batch: batchFactory(p, o.Lanes, func() rt.Monitor {
				return &instrument.Coverage{Covered: snapshot, ULP: o.ULP}
			}),
			Ctx: ctx,
		})

		// Consume slots in round order, replaying the serial driver's
		// state machine; the first slot that grows the covered set
		// invalidates the rest of the batch (they were computed against
		// the now-stale snapshot).
		for _, sr := range batch {
			if sr.Skipped {
				break
			}
			if sr.Canceled {
				// A cancelled slot holds a truncated round: charge its
				// samples but don't let it count as a stalled round.
				rep.Evals += sr.Evals
				rep.Canceled = true
				break
			}
			rep.Rounds++
			rep.Evals += sr.Evals
			if !sr.FoundZero {
				if stall++; stall >= o.maxStall() {
					break
				}
				continue
			}
			// Replay the solution to find which sides it covers, and
			// merge. Any FoundZero slot ends the batch: later slots may
			// have been cancelled when this zero landed, so their
			// results are not trustworthy — the next batch re-runs them
			// with their positional seeds, preserving serial
			// equivalence.
			p.Execute(rec, sr.X)
			sides := rec.Sides()
			if len(sides) == 0 {
				stall++
				break
			}
			stall = 0
			for _, s := range sides {
				covered[s] = true
				rep.Covered = append(rep.Covered, s)
				in := make([]float64, len(sr.X))
				copy(in, sr.X)
				rep.Inputs[s] = in
			}
			break // covered set changed: remaining slots are stale
		}
	}
	sort.Slice(rep.Covered, func(i, j int) bool {
		a, b := rep.Covered[i], rep.Covered[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Taken && !b.Taken
	})
	return rep
}
