package analysis

import (
	"sort"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// CoverOptions configures Cover.
type CoverOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// EvalsPerRound bounds evaluations per minimization round; zero
	// selects 4000.
	EvalsPerRound int
	// MaxStall stops after this many consecutive rounds without new
	// coverage; zero selects 6.
	MaxStall int
	// Backend is the MO backend; nil selects Basinhopping.
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// ULP selects ULP branch distances.
	ULP bool
}

func (o CoverOptions) evalsPerRound() int {
	if o.EvalsPerRound > 0 {
		return o.EvalsPerRound
	}
	return 4000
}

func (o CoverOptions) maxStall() int {
	if o.MaxStall > 0 {
		return o.MaxStall
	}
	return 6
}

func (o CoverOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

// CoverReport is the result of branch-coverage testing.
type CoverReport struct {
	// Covered lists the covered branch sides.
	Covered []instrument.Side
	// Total is 2 × number of branch sites (each site has two sides).
	Total int
	// Inputs maps each covered side to the input that first covered it.
	Inputs map[instrument.Side][]float64
	// Rounds and Evals account for the search effort.
	Rounds int
	Evals  int
}

// Ratio returns covered/total.
func (r *CoverReport) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(len(r.Covered)) / float64(r.Total)
}

// Cover implements branch-coverage-based testing (§2 Instance 4, the
// CoverMe construction): it grows the covered set B by repeatedly
// minimizing the coverage weak distance, which is zero exactly on
// inputs taking some branch side outside B.
func Cover(p *rt.Program, o CoverOptions) *CoverReport {
	mon := instrument.NewCoverage()
	mon.ULP = o.ULP
	rec := &instrument.RecordNewSides{Covered: mon.Covered}
	w := p.WeakDistance(mon)
	rep := &CoverReport{
		Total:  2 * len(p.Branches),
		Inputs: map[instrument.Side][]float64{},
	}

	backend := o.backend()
	stall := 0
	for stall < o.maxStall() && len(mon.Covered) < rep.Total {
		rep.Rounds++
		cfg := opt.Config{
			Seed:       o.Seed + int64(rep.Rounds)*15485863,
			MaxEvals:   o.evalsPerRound(),
			Bounds:     o.Bounds,
			StopAtZero: true,
		}
		r := backend.Minimize(opt.Objective(w), p.Dim, cfg)
		rep.Evals += r.Evals
		if !r.FoundZero {
			stall++
			continue
		}
		// Replay the solution to find which sides it covers, and merge.
		p.Execute(rec, r.X)
		sides := rec.Sides()
		if len(sides) == 0 {
			stall++
			continue
		}
		stall = 0
		for _, s := range sides {
			mon.Covered[s] = true
			rep.Covered = append(rep.Covered, s)
			in := make([]float64, len(r.X))
			copy(in, r.X)
			rep.Inputs[s] = in
		}
	}
	sort.Slice(rep.Covered, func(i, j int) bool {
		a, b := rep.Covered[i], rep.Covered[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Taken && !b.Taken
	})
	return rep
}
