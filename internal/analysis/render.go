package analysis

import (
	"fmt"
	"io"

	"repro/internal/sat"
)

// This file implements the Report interface for the typed analysis
// reports. Render output is byte-identical to the historical
// per-analysis CLI output (fpbva, coverme, fpod, fpreach, xsat), which
// the thin command wrappers rely on.

// --- BoundaryReport ---

// Summary implements Report.
func (r *BoundaryReport) Summary() string {
	return fmt.Sprintf("%d samples, %d boundary values, %d conditions triggered",
		r.Samples, r.BoundaryValues, len(r.Conditions))
}

// Failed implements Report.
func (r *BoundaryReport) Failed() bool { return false }

// Interrupted implements Report.
func (r *BoundaryReport) Interrupted() bool { return r.Canceled }

// Render implements Report (the historical fpbva output).
func (r *BoundaryReport) Render(w io.Writer, in Input) {
	fmt.Fprintf(w, "program %s: %d samples, %d boundary values, %d conditions triggered\n",
		in.Program.Name, r.Samples, r.BoundaryValues, len(r.Conditions))
	if r.SoundnessViolations > 0 {
		fmt.Fprintf(w, "WARNING: %d soundness violations (defective weak distance?)\n",
			r.SoundnessViolations)
	}
	for _, c := range r.Conditions {
		sign := "+"
		if c.Key.Negative {
			sign = "-"
		}
		fmt.Fprintf(w, "  [%s] site %d (%s): hits=%d min=%.17g max=%.17g\n",
			sign, c.Key.Site, c.Label, c.Hits, c.Min, c.Max)
		for i, x := range c.Examples {
			if i >= 3 {
				break
			}
			fmt.Fprintf(w, "      example: %v\n", x)
		}
	}
}

// --- CoverReport ---

// Summary implements Report.
func (r *CoverReport) Summary() string {
	return fmt.Sprintf("covered %d/%d branch sides (%.1f%%) in %d rounds, %d evals",
		len(r.Covered), r.Total, 100*r.Ratio(), r.Rounds, r.Evals)
}

// Failed implements Report.
func (r *CoverReport) Failed() bool { return false }

// Interrupted implements Report.
func (r *CoverReport) Interrupted() bool { return r.Canceled }

// Render implements Report (the historical coverme output).
func (r *CoverReport) Render(w io.Writer, in Input) {
	fmt.Fprintf(w, "program %s: covered %d/%d branch sides (%.1f%%) in %d rounds, %d evals\n",
		in.Program.Name, len(r.Covered), r.Total, 100*r.Ratio(), r.Rounds, r.Evals)
	labels := map[int]string{}
	for _, b := range in.Program.Branches {
		labels[b.ID] = b.Label
	}
	for _, s := range r.Covered {
		outcome := "false"
		if s.Taken {
			outcome = "true"
		}
		fmt.Fprintf(w, "  site %d (%s) %s side: input %v\n", s.Site, labels[s.Site], outcome, r.Inputs[s])
	}
}

// --- OverflowRun ---

// Summary implements Report.
func (r *OverflowRun) Summary() string {
	s := fmt.Sprintf("%d/%d operations overflowed (%d rounds, %d evals)",
		len(r.Findings), r.Ops, r.Rounds, r.Evals)
	if r.SFChecked {
		s += fmt.Sprintf(", %d inconsistencies", len(r.Inconsistencies))
	}
	return s
}

// Failed implements Report.
func (r *OverflowRun) Failed() bool { return false }

// Interrupted implements Report.
func (r *OverflowRun) Interrupted() bool { return r.Canceled }

// Render implements Report (the historical fpod output).
func (r *OverflowRun) Render(w io.Writer, in Input) {
	p := in.Program
	fmt.Fprintf(w, "program %s: %d/%d operations overflowed (%d rounds, %d evals, %.2fs)\n",
		p.Name, len(r.Findings), r.Ops, r.Rounds, r.Evals, r.Duration.Seconds())
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  overflow at op %d: %s\n      input %v\n", f.Site, f.Label, f.Input)
	}
	for _, m := range r.Missed {
		label := ""
		for _, op := range p.Ops {
			if op.ID == m {
				label = op.Label
			}
		}
		fmt.Fprintf(w, "  missed  at op %d: %s\n", m, label)
	}
	if r.SFChecked {
		fmt.Fprintf(w, "inconsistencies (status GSL_SUCCESS with non-finite result): %d\n", len(r.Inconsistencies))
		for _, inc := range r.Inconsistencies {
			fmt.Fprintf(w, "  input %v: val=%g err=%g — %s\n", inc.Input, inc.Val, inc.Err, inc.Cause)
		}
	}
}

// --- ReachRun ---

// Summary implements Report.
func (r *ReachRun) Summary() string { return r.Result.String() }

// Failed implements Report: path not reached (the historical fpreach
// exit 2).
func (r *ReachRun) Failed() bool { return !r.Found }

// Interrupted implements Report.
func (r *ReachRun) Interrupted() bool { return r.Canceled }

// Render implements Report (the historical fpreach output).
func (r *ReachRun) Render(w io.Writer, in Input) {
	fmt.Fprintf(w, "program %s, target %v\n", r.Program, r.Target)
	fmt.Fprintln(w, r.Result)
}

// --- SatRun ---

// Summary implements Report.
func (r *SatRun) Summary() string {
	if r.Verdict == sat.Sat {
		return "sat"
	}
	return fmt.Sprintf("unknown (min weak distance %.6g after %d evaluations)", r.MinDistance, r.Evals)
}

// Failed implements Report: formula not decided (the historical xsat
// exit 2).
func (r *SatRun) Failed() bool { return r.Verdict != sat.Sat }

// Interrupted implements Report.
func (r *SatRun) Interrupted() bool { return r.Canceled }

// Render implements Report (the historical xsat output).
func (r *SatRun) Render(w io.Writer, in Input) {
	switch r.Verdict {
	case sat.Sat:
		fmt.Fprintln(w, "sat")
		for _, name := range sat.VarNames(r.Vars) {
			fmt.Fprintf(w, "  %s = %.17g\n", name, r.Model[r.Vars[name]])
		}
	default:
		fmt.Fprintf(w, "unknown (min weak distance %.6g after %d evaluations)\n", r.MinDistance, r.Evals)
		fmt.Fprintln(w, "note: a positive minimum proves nothing by itself; the search is incomplete (Limitation 3)")
	}
}

// --- NonFiniteReport ---

// Summary implements Report.
func (r *NonFiniteReport) Summary() string {
	return fmt.Sprintf("%d/%d operations produced non-finite values (%d rounds, %d evals)",
		len(r.Findings), r.Ops, r.Rounds, r.Evals)
}

// Failed implements Report.
func (r *NonFiniteReport) Failed() bool { return false }

// Interrupted implements Report.
func (r *NonFiniteReport) Interrupted() bool { return r.Canceled }

// Render implements Report.
func (r *NonFiniteReport) Render(w io.Writer, in Input) {
	p := in.Program
	fmt.Fprintf(w, "program %s: %d/%d operations produced non-finite values (%d rounds, %d evals, %.2fs)\n",
		p.Name, len(r.Findings), r.Ops, r.Rounds, r.Evals, r.Duration.Seconds())
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  %s at op %d: %s\n      input %v\n", f.Class, f.Site, f.Label, f.Input)
	}
	for _, m := range r.Missed {
		label := ""
		for _, op := range p.Ops {
			if op.ID == m {
				label = op.Label
			}
		}
		fmt.Fprintf(w, "  missed   at op %d: %s\n", m, label)
	}
}
