// Package analysis implements the end-user floating-point analyses of
// the paper on top of the weak-distance reduction kernel: boundary value
// analysis (§4.2, §6.2), path reachability (§4.3), overflow detection
// (Algorithm 3, §6.3), branch-coverage testing (§2 Instance 4), and the
// inconsistency replay of §6.3.2.
package analysis

import (
	"context"
	"math"
	"runtime"
	"sort"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// BoundaryOptions configures BoundaryValues.
type BoundaryOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// Starts is the number of minimization restarts; zero selects 32.
	Starts int
	// EvalsPerStart bounds weak-distance evaluations per restart; zero
	// selects 4000.
	EvalsPerStart int
	// Backend is the MO backend; nil selects Basinhopping.
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// ULP selects the ULP boundary distance (Limitation-2 mitigation).
	ULP bool
	// HighPrecision accumulates the multiplicative distance in scaled
	// double-double arithmetic, eliminating spurious zeros from product
	// underflow (the §5.2 higher-precision mitigation).
	HighPrecision bool
	// Sites restricts the analysis to a subset of branch sites.
	Sites map[int]bool
	// KeepValues bounds how many concrete boundary values are retained
	// per condition (statistics always cover all of them); zero
	// selects 16.
	KeepValues int
	// Workers sets multi-start parallelism: 0 selects runtime.NumCPU(),
	// 1 forces serial execution. The report is identical for every
	// value — per-start traces are merged in start order, so parallelism
	// only changes wall-clock time.
	Workers int
	// Lanes sets the batch evaluation width: each start's weak distance
	// evaluates candidate batches as lane-parallel VM sweeps of up to
	// Lanes inputs. 0 or 1 keeps the scalar path. Like Workers the
	// report is identical for every value.
	Lanes int
}

func (o BoundaryOptions) starts() int {
	if o.Starts > 0 {
		return o.Starts
	}
	return 32
}

func (o BoundaryOptions) evalsPerStart() int {
	if o.EvalsPerStart > 0 {
		return o.EvalsPerStart
	}
	return 4000
}

func (o BoundaryOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o BoundaryOptions) keep() int {
	if o.KeepValues > 0 {
		return o.KeepValues
	}
	return 16
}

// ConditionKey identifies one boundary condition group: a branch site
// together with the sign of the (first) input — Table 2's ± rows.
type ConditionKey struct {
	Site     int
	Negative bool
}

// ConditionStats aggregates the boundary values attributed to one
// condition group.
type ConditionStats struct {
	Key   ConditionKey
	Label string
	// Hits counts boundary values triggering this condition.
	Hits int
	// Min and Max are the extreme first-input values observed (Table 2's
	// min/max rows).
	Min, Max float64
	// Examples retains up to KeepValues concrete inputs.
	Examples [][]float64
}

// ProgressPoint is one step of the Fig. 9 series: after Samples
// weak-distance evaluations, Conditions distinct boundary conditions
// had been triggered.
type ProgressPoint struct {
	Samples    int
	Conditions int
}

// BoundaryReport is the result of a boundary value analysis.
type BoundaryReport struct {
	// Conditions lists the triggered condition groups, ordered by site
	// then sign.
	Conditions []ConditionStats
	// BoundaryValues counts all zero-distance samples (the |BV| of
	// §6.2).
	BoundaryValues int
	// Samples counts all weak-distance evaluations (the |Raw| of §6.2).
	Samples int
	// Progress is the Fig. 9 series.
	Progress []ProgressPoint
	// SoundnessViolations counts reported boundary values whose replay
	// failed to witness an exact boundary hit — always 0 unless the
	// weak distance is defective (§6.2 check (i)).
	SoundnessViolations int
	// Canceled reports the analysis was cut short by context
	// cancellation; the statistics cover the samples taken up to that
	// point.
	Canceled bool `json:"canceled,omitempty"`
}

// Condition returns the stats for a condition group, or nil.
func (r *BoundaryReport) Condition(site int, negative bool) *ConditionStats {
	for i := range r.Conditions {
		if r.Conditions[i].Key == (ConditionKey{site, negative}) {
			return &r.Conditions[i]
		}
	}
	return nil
}

// BoundaryValues runs boundary value analysis on the program: it
// minimizes the multiplicative boundary weak distance (§4.2) from many
// random starts, collects every sampled zero, attributes each zero to
// the boundary condition(s) it triggers by replaying it under a
// witness monitor (the §6.2 soundness check), and aggregates Table 2 /
// Fig. 9 style statistics.
func BoundaryValues(ctx context.Context, p *rt.Program, o BoundaryOptions) *BoundaryReport {
	wit := &instrument.BoundaryWitness{}
	rep := &BoundaryReport{}
	stats := map[ConditionKey]*ConditionStats{}
	labels := map[int]string{}
	for _, b := range p.Branches {
		labels[b.ID] = b.Label
	}

	// Every restart is independent: run them on the worker pool, each
	// with its own program instance, monitor, and trace, then fold the
	// traces in start order — the exact sample stream the serial loop
	// produced. Starts run in worker-sized batches so that at most one
	// batch of traces is retained at a time (the fold is a pure
	// concatenation in start order, so batching never changes the
	// report; Workers=1 keeps the serial loop's one-trace peak).
	batchSize := o.Workers
	if batchSize <= 0 {
		batchSize = runtime.NumCPU()
	}
	for base := 0; base < o.starts(); base += batchSize {
		if ctx.Err() != nil {
			rep.Canceled = true
			break
		}
		n := o.starts() - base
		if n > batchSize {
			n = batchSize
		}
		batch := opt.ParallelStarts(o.backend(), func(int) opt.Objective {
			inst := p.Instance()
			mon := &instrument.Boundary{ULP: o.ULP, HighPrecision: o.HighPrecision, Sites: o.Sites}
			return opt.Objective(inst.WeakDistance(mon))
		}, p.Dim, opt.ParallelConfig{
			Starts:     n,
			Workers:    o.Workers,
			Seed:       o.Seed + int64(base)*7919,
			SeedStride: 7919,
			MaxEvals:   o.evalsPerStart(),
			Bounds:     o.Bounds,
			StopAtZero: false, // keep sampling: we want many boundary values
			Batch: batchFactory(p, o.Lanes, func() rt.Monitor {
				return &instrument.Boundary{ULP: o.ULP, HighPrecision: o.HighPrecision, Sites: o.Sites}
			}),
			RecordTrace: true,
			Ctx:         ctx,
		})

		for _, sr := range batch {
			if sr.Canceled {
				rep.Canceled = true
			}
			if sr.Trace == nil {
				continue // start never ran (cancelled before launch)
			}
			mergeBoundaryTrace(p, sr.Trace, wit, rep, stats, labels, o)
		}
	}

	for _, cs := range stats {
		rep.Conditions = append(rep.Conditions, *cs)
	}
	sort.Slice(rep.Conditions, func(i, j int) bool {
		a, b := rep.Conditions[i].Key, rep.Conditions[j].Key
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return !a.Negative && b.Negative
	})
	return rep
}

// mergeBoundaryTrace folds one start's sample stream into the report:
// count samples, attribute every exact zero to its boundary
// condition(s) by witness replay, and maintain the Fig. 9 progress
// series.
func mergeBoundaryTrace(p *rt.Program, tr *opt.Trace, wit *instrument.BoundaryWitness,
	rep *BoundaryReport, stats map[ConditionKey]*ConditionStats, labels map[int]string,
	o BoundaryOptions) {
	for _, smp := range tr.Samples() {
		rep.Samples++
		if smp.F != 0 {
			continue
		}
		rep.BoundaryValues++
		p.Execute(wit, smp.X)
		sites := wit.Sites()
		if len(sites) == 0 {
			rep.SoundnessViolations++
			continue
		}
		for _, site := range sites {
			if o.Sites != nil && !o.Sites[site] {
				continue
			}
			key := ConditionKey{Site: site, Negative: math.Signbit(smp.X[0])}
			cs, ok := stats[key]
			if !ok {
				cs = &ConditionStats{
					Key:   key,
					Label: labels[site],
					Min:   math.Inf(1),
					Max:   math.Inf(-1),
				}
				stats[key] = cs
				rep.Progress = append(rep.Progress, ProgressPoint{
					Samples:    rep.Samples,
					Conditions: len(stats),
				})
			}
			cs.Hits++
			if v := smp.X[0]; v < cs.Min {
				cs.Min = v
			}
			if v := smp.X[0]; v > cs.Max {
				cs.Max = v
			}
			if len(cs.Examples) < o.keep() {
				x := make([]float64, len(smp.X))
				copy(x, smp.X)
				cs.Examples = append(cs.Examples, x)
			}
		}
	}
}
