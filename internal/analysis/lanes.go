package analysis

import (
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// batchObjective builds a lane-chunked batch evaluator of a program's
// weak distance: its own program instance plus a bank of `lanes`
// independent monitors from the factory, evaluating each submitted
// batch as lane-parallel VM sweeps of at most `lanes` inputs. The
// engine's batch contract (rt.Program.RunBatch) makes every sweep
// bit-identical to serial execution, so a batch evaluator and the
// scalar weak distance built from the same monitor factory are
// interchangeable. Like a scalar instance it is single-goroutine.
func batchObjective(p *rt.Program, lanes int, mk func() rt.Monitor) opt.BatchObjective {
	inst := p.Instance()
	mons := instrument.NewLanes(lanes, mk)
	return opt.BatchFunc(func(xs [][]float64, out []float64) {
		for len(xs) > 0 {
			n := len(xs)
			if n > lanes {
				n = lanes
			}
			inst.ExecuteBatch(mons[:n], xs[:n], out[:n])
			xs, out = xs[n:], out[n:]
		}
	})
}

// batchFactory adapts batchObjective to the opt.ParallelConfig.Batch
// per-start factory, or nil when lanes does not ask for batching —
// every analysis threads its Lanes knob through here, so a zero knob
// keeps the historical scalar path bit-for-bit.
func batchFactory(p *rt.Program, lanes int, mk func() rt.Monitor) func(int) opt.BatchObjective {
	if lanes < 2 {
		return nil
	}
	return func(int) opt.BatchObjective {
		return batchObjective(p, lanes, mk)
	}
}
