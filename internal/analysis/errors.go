package analysis

import "fmt"

// SpecError is a typed validation error for one field of an analysis
// Spec or of the surfaces that feed it (CLI flags, pipeline job JSON,
// the fpserve /v1 API). Reason carries the complete human-readable
// message — Error returns it verbatim, so a SpecError renders on the
// CLI exactly like the stringly errors it replaced — while Field and
// Value give structured consumers (the /v1 problem+json error model)
// the offending field and input without re-parsing text.
type SpecError struct {
	// Field names the spec field or flag the error is about ("analysis",
	// "bounds", "path", "backend", ...). Structured surfaces may prefix
	// it with a location, e.g. "jobs[3].spec.backend".
	Field string `json:"field"`
	// Value is the offending input as written, when there was one.
	Value string `json:"value,omitempty"`
	// Reason is the full human-readable message.
	Reason string `json:"reason"`
}

// Error implements error. It returns Reason verbatim: the typed error
// renders identically to the fmt.Errorf text it replaced.
func (e *SpecError) Error() string { return e.Reason }

// Specf builds a SpecError for field, with the offending value and a
// printf-style reason.
func Specf(field, value, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Value: value, Reason: fmt.Sprintf(format, args...)}
}
