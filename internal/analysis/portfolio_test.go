package analysis_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/opt"
)

// TestPortfolioDeterminism is the acceptance pin of the portfolio
// scheduler: through the registry Spec path (backend=portfolio with the
// plateau detector actively escalating, via a small stall window), the
// analyses must report bit-identical findings for every worker count
// and lane width, batched vs scalar — the same table contract the fixed
// backends satisfy, now with the scheduler's probe/race/early-exit
// machinery in the loop.
func TestPortfolioDeterminism(t *testing.T) {
	p := compileFig2(t) // interpreter program: real lane-parallel batch engine
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}

	runSpec := func(t *testing.T, spec analysis.Spec, workers, lanes int) analysis.Report {
		t.Helper()
		a, err := analysis.Lookup(spec.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		spec.Workers, spec.Lanes = workers, lanes
		rep, err := a.Run(context.Background(), analysis.Input{Program: p}, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	specs := []analysis.Spec{
		{Analysis: "bva", Seed: 11, Starts: 6, Evals: 1200,
			Backend: "portfolio", StallWindow: 150, Bounds: bounds},
		{Analysis: "coverage", Seed: 12, Evals: 1200, Stall: 4,
			Backend: "portfolio", StallWindow: 150, Bounds: bounds},
		{Analysis: "reach", Seed: 14, Starts: 6, Evals: 2000,
			Backend: "portfolio", StallWindow: 150, Bounds: bounds,
			Path: []instrument.Decision{{Site: 0, Taken: true}, {Site: 1, Taken: false}}},
	}
	for _, spec := range specs {
		t.Run(spec.Analysis, func(t *testing.T) {
			base := runSpec(t, spec, 1, 0)
			for _, grid := range []struct{ workers, lanes int }{
				{1, 8}, {3, 0}, {3, 8}, {4, 3},
			} {
				got := runSpec(t, spec, grid.workers, grid.lanes)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("workers=%d lanes=%d diverged from serial scalar:\n%+v\n%+v",
						grid.workers, grid.lanes, base, got)
				}
			}
		})
	}
}

// TestStallKnobsRequirePortfolio: the stall knobs are typed SpecErrors
// on any other backend, and invalid values are rejected.
func TestStallKnobsRequirePortfolio(t *testing.T) {
	p := compileFig2(t)
	a, err := analysis.Lookup("bva")
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec analysis.Spec) error {
		spec.Analysis, spec.Seed, spec.Starts, spec.Evals = "bva", 1, 2, 200
		_, err := a.Run(context.Background(), analysis.Input{Program: p}, spec)
		return err
	}

	if err := run(analysis.Spec{Backend: "basinhopping", StallWindow: 100}); err == nil {
		t.Error("stallWindow accepted on a fixed backend")
	} else if se, ok := err.(*analysis.SpecError); !ok || se.Field != "stallWindow" {
		t.Errorf("want a stallWindow SpecError, got %v", err)
	}
	if err := run(analysis.Spec{Backend: "basinhopping", StallRatio: 0.1}); err == nil {
		t.Error("stallRatio accepted on a fixed backend")
	} else if se, ok := err.(*analysis.SpecError); !ok || se.Field != "stallRatio" {
		t.Errorf("want a stallRatio SpecError, got %v", err)
	}
	if err := run(analysis.Spec{Backend: "portfolio", StallWindow: -1}); err == nil ||
		!strings.Contains(err.Error(), ">= 0") {
		t.Errorf("negative stallWindow not rejected: %v", err)
	}
	if err := run(analysis.Spec{Backend: "portfolio", StallRatio: 1.5}); err == nil ||
		!strings.Contains(err.Error(), "[0, 1)") {
		t.Errorf("stallRatio 1.5 not rejected: %v", err)
	}
	if err := run(analysis.Spec{Backend: "portfolio", StallWindow: 100, StallRatio: 0.05}); err != nil {
		t.Errorf("valid portfolio stall knobs rejected: %v", err)
	}
}
