package analysis

import (
	"time"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// OverflowOptions configures DetectOverflows (Algorithm 3).
type OverflowOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// EvalsPerRound bounds weak-distance evaluations per minimization
	// round (step 5); zero selects 6000.
	EvalsPerRound int
	// MaxRounds caps minimization rounds beyond the |L| <= nOps
	// guarantee; zero selects 3 * number of operation sites.
	MaxRounds int
	// Backend is the MO backend; nil selects Basinhopping (as in the
	// paper's fpod).
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// RetriesPerTarget relaunches from fresh starting points when a
	// round ends with a positive minimum, before giving the target up
	// (§6.3.1: "we relaunch Basinhopping with other starting points in
	// case that failing to find a minimum 0 is due to incompleteness");
	// zero selects 3.
	RetriesPerTarget int
}

func (o OverflowOptions) evalsPerRound() int {
	if o.EvalsPerRound > 0 {
		return o.EvalsPerRound
	}
	return 6000
}

func (o OverflowOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o OverflowOptions) retries() int {
	if o.RetriesPerTarget > 0 {
		return o.RetriesPerTarget
	}
	return 3
}

// OverflowFinding is one detected overflow: the operation site and an
// input triggering it (a row of Table 4).
type OverflowFinding struct {
	Site  int
	Label string
	Input []float64
}

// OverflowReport is the result of Algorithm 3.
type OverflowReport struct {
	// Findings lists one overflow per detected site, in detection
	// order.
	Findings []OverflowFinding
	// Missed lists operation sites for which no overflow was found
	// (unreachable overflows or incompleteness — Table 4's "missed").
	Missed []int
	// Ops is the total number of operation sites (|Op| of Table 3).
	Ops int
	// Rounds counts minimization rounds; Evals total weak-distance
	// evaluations.
	Rounds int
	Evals  int
	// Duration is the wall-clock analysis time (Table 3's T column).
	Duration time.Duration
}

// Found reports whether the site has a detected overflow.
func (r *OverflowReport) Found(site int) bool {
	for _, f := range r.Findings {
		if f.Site == site {
			return true
		}
	}
	return false
}

// DetectOverflows implements Algorithm 3 (the paper's fpod): it tracks
// the set L of handled operation sites, repeatedly minimizes the
// overflow weak distance (which targets the last executed site outside
// L), records an input for every site driven to overflow, and
// terminates when every site is tracked.
func DetectOverflows(p *rt.Program, o OverflowOptions) *OverflowReport {
	start := time.Now()
	mon := instrument.NewOverflow()
	w := p.WeakDistance(mon)
	rep := &OverflowReport{Ops: len(p.Ops)}
	labels := map[int]string{}
	for _, op := range p.Ops {
		labels[op.ID] = op.Label
	}

	maxRounds := o.MaxRounds
	if maxRounds == 0 {
		maxRounds = 3 * len(p.Ops)
	}
	backend := o.backend()
	retriesLeft := o.retries()

	for rep.Rounds = 0; rep.Rounds < maxRounds && len(mon.L) < len(p.Ops); rep.Rounds++ {
		// Steps 4-5: minimize from a fresh random starting point.
		cfg := opt.Config{
			Seed:       o.Seed + int64(rep.Rounds)*104729,
			MaxEvals:   o.evalsPerRound(),
			Bounds:     o.Bounds,
			StopAtZero: true,
		}
		r := backend.Minimize(opt.Objective(w), p.Dim, cfg)
		rep.Evals += r.Evals

		// Step 7: replay the minimum point to identify the targeted
		// instruction (the last untracked site the execution reached).
		w(r.X)
		target := mon.LastSite()

		if r.FoundZero && target >= 0 {
			// Step 6: a genuine overflow at the target.
			rep.Findings = append(rep.Findings, OverflowFinding{
				Site:  target,
				Label: labels[target],
				Input: r.X,
			})
			mon.L[target] = true
			retriesLeft = o.retries()
			continue
		}

		if target < 0 {
			// Every site the execution reaches is already tracked; a
			// fresh random start may reach others, but if the whole
			// round made no progress repeatedly, stop early.
			if retriesLeft--; retriesLeft < 0 {
				break
			}
			continue
		}

		// Positive minimum: possibly incompleteness. Retry the same
		// target from other starting points before giving it up
		// (adding it to L per the Algorithm 3 termination argument).
		if retriesLeft > 0 {
			retriesLeft--
			continue
		}
		mon.L[target] = true
		retriesLeft = o.retries()
	}

	for _, op := range p.Ops {
		if !rep.Found(op.ID) {
			rep.Missed = append(rep.Missed, op.ID)
		}
	}
	rep.Duration = time.Since(start)
	return rep
}
