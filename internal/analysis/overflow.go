package analysis

import (
	"runtime"
	"time"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// OverflowOptions configures DetectOverflows (Algorithm 3).
type OverflowOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// EvalsPerRound bounds weak-distance evaluations per minimization
	// round (step 5); zero selects 6000.
	EvalsPerRound int
	// MaxRounds caps minimization rounds beyond the |L| <= nOps
	// guarantee; zero selects 3 * number of operation sites.
	MaxRounds int
	// Backend is the MO backend; nil selects Basinhopping (as in the
	// paper's fpod).
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// RetriesPerTarget relaunches from fresh starting points when a
	// round ends with a positive minimum, before giving the target up
	// (§6.3.1: "we relaunch Basinhopping with other starting points in
	// case that failing to find a minimum 0 is due to incompleteness");
	// zero selects 3.
	RetriesPerTarget int
	// Workers sets the parallelism: 0 selects runtime.NumCPU(), 1
	// forces the serial loop. Rounds depend on the tracked set L built
	// by earlier rounds, so parallelism is speculative: Workers rounds
	// run concurrently against a snapshot of L, and speculative results
	// are discarded as soon as a consumed round changes L. The report is
	// identical for every Workers value.
	Workers int
}

func (o OverflowOptions) evalsPerRound() int {
	if o.EvalsPerRound > 0 {
		return o.EvalsPerRound
	}
	return 6000
}

func (o OverflowOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o OverflowOptions) retries() int {
	if o.RetriesPerTarget > 0 {
		return o.RetriesPerTarget
	}
	return 3
}

func (o OverflowOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// OverflowFinding is one detected overflow: the operation site and an
// input triggering it (a row of Table 4).
type OverflowFinding struct {
	Site  int
	Label string
	Input []float64
}

// OverflowReport is the result of Algorithm 3.
type OverflowReport struct {
	// Findings lists one overflow per detected site, in detection
	// order.
	Findings []OverflowFinding
	// Missed lists operation sites for which no overflow was found
	// (unreachable overflows or incompleteness — Table 4's "missed").
	Missed []int
	// Ops is the total number of operation sites (|Op| of Table 3).
	Ops int
	// Rounds counts minimization rounds; Evals total weak-distance
	// evaluations. Discarded speculative rounds are not charged.
	Rounds int
	Evals  int
	// Duration is the wall-clock analysis time (Table 3's T column).
	Duration time.Duration
}

// Found reports whether the site has a detected overflow.
func (r *OverflowReport) Found(site int) bool {
	for _, f := range r.Findings {
		if f.Site == site {
			return true
		}
	}
	return false
}

// DetectOverflows implements Algorithm 3 (the paper's fpod): it tracks
// the set L of handled operation sites, repeatedly minimizes the
// overflow weak distance (which targets the last executed site outside
// L), records an input for every site driven to overflow, and
// terminates when every site is tracked.
func DetectOverflows(p *rt.Program, o OverflowOptions) *OverflowReport {
	start := time.Now()
	L := map[int]bool{}
	rep := &OverflowReport{Ops: len(p.Ops)}
	labels := map[int]string{}
	for _, op := range p.Ops {
		labels[op.ID] = op.Label
	}

	maxRounds := o.MaxRounds
	if maxRounds == 0 {
		maxRounds = 3 * len(p.Ops)
	}
	backend := o.backend()
	retriesLeft := o.retries()
	// replayMon identifies each round's targeted instruction (step 7) by
	// replaying the round's minimum point against the round's tracked
	// set. It is only ever used single-threaded, during the merge.
	replayMon := instrument.NewOverflow()

	gaveUp := false
	for !gaveUp && rep.Rounds < maxRounds && len(L) < len(p.Ops) {
		// Launch speculative rounds against a read-only snapshot of L.
		// Slot j corresponds to serial round rep.Rounds+j and uses that
		// round's historical seed.
		snapshot := make(map[int]bool, len(L))
		for id := range L {
			snapshot[id] = true
		}
		batchSize := o.workers()
		if rem := maxRounds - rep.Rounds; batchSize > rem {
			batchSize = rem
		}
		batch := opt.ParallelStarts(backend, func(int) opt.Objective {
			inst := p.Instance()
			mon := &instrument.Overflow{L: snapshot}
			return opt.Objective(inst.WeakDistance(mon))
		}, p.Dim, opt.ParallelConfig{
			Starts:     batchSize,
			Workers:    o.Workers,
			Seed:       o.Seed + int64(rep.Rounds)*104729,
			SeedStride: 104729,
			MaxEvals:   o.evalsPerRound(),
			Bounds:     o.Bounds,
			StopAtZero: true,
		})

		// Consume slots in round order, replaying Algorithm 3's state
		// machine; the first slot that mutates L invalidates the rest
		// (their weak distances were built over the stale snapshot).
		for _, sr := range batch {
			if sr.Skipped {
				break
			}
			rep.Rounds++
			rep.Evals += sr.Evals

			// Step 7: replay the minimum point to identify the targeted
			// instruction (the last untracked site the execution
			// reached). The snapshot equals L for every consumed slot.
			replayMon.L = snapshot
			p.Execute(replayMon, sr.X)
			target := replayMon.LastSite()

			if sr.FoundZero && target >= 0 {
				// Step 6: a genuine overflow at the target.
				rep.Findings = append(rep.Findings, OverflowFinding{
					Site:  target,
					Label: labels[target],
					Input: sr.X,
				})
				L[target] = true
				retriesLeft = o.retries()
				break // L changed: remaining slots are stale
			}

			if target < 0 {
				// Every site the execution reaches is already tracked; a
				// fresh random start may reach others, but if the whole
				// round made no progress repeatedly, stop early. The
				// serial loop broke before counting the give-up round
				// (its post-increment never ran), so uncount it here.
				if retriesLeft--; retriesLeft < 0 {
					rep.Rounds--
					gaveUp = true
					break
				}
				if sr.FoundZero {
					// Defensive: a zero whose replay targets nothing
					// means search and replay disagree. Later slots may
					// have been cancelled when this zero landed, so end
					// the batch; the next batch re-runs them with their
					// positional seeds.
					break
				}
				continue
			}

			// Positive minimum: possibly incompleteness. Retry the same
			// target from other starting points before giving it up
			// (adding it to L per the Algorithm 3 termination argument).
			if retriesLeft > 0 {
				retriesLeft--
				continue
			}
			L[target] = true
			retriesLeft = o.retries()
			break // L changed: remaining slots are stale
		}
	}

	for _, op := range p.Ops {
		if !rep.Found(op.ID) {
			rep.Missed = append(rep.Missed, op.ID)
		}
	}
	rep.Duration = time.Since(start)
	return rep
}
