package analysis

import (
	"context"
	"runtime"
	"time"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// OverflowOptions configures DetectOverflows (Algorithm 3).
type OverflowOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// EvalsPerRound bounds weak-distance evaluations per minimization
	// round (step 5); zero selects 6000.
	EvalsPerRound int
	// MaxRounds caps minimization rounds beyond the |L| <= nOps
	// guarantee; zero selects 3 * number of operation sites.
	MaxRounds int
	// Backend is the MO backend; nil selects Basinhopping (as in the
	// paper's fpod).
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// RetriesPerTarget relaunches from fresh starting points when a
	// round ends with a positive minimum, before giving the target up
	// (§6.3.1: "we relaunch Basinhopping with other starting points in
	// case that failing to find a minimum 0 is due to incompleteness");
	// zero selects 3.
	RetriesPerTarget int
	// Workers sets the parallelism: 0 selects runtime.NumCPU(), 1
	// forces the serial loop. Rounds depend on the tracked set L built
	// by earlier rounds, so parallelism is speculative: Workers rounds
	// run concurrently against a snapshot of L, and speculative results
	// are discarded as soon as a consumed round changes L. The report is
	// identical for every Workers value.
	Workers int
	// Lanes sets the batch evaluation width: each round's weak distance
	// evaluates candidate batches as lane-parallel VM sweeps of up to
	// Lanes inputs. 0 or 1 keeps the scalar path; the report is
	// identical for every value.
	Lanes int
}

func (o OverflowOptions) evalsPerRound() int {
	if o.EvalsPerRound > 0 {
		return o.EvalsPerRound
	}
	return 6000
}

func (o OverflowOptions) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o OverflowOptions) retries() int {
	if o.RetriesPerTarget > 0 {
		return o.RetriesPerTarget
	}
	return 3
}

func (o OverflowOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o OverflowOptions) maxRounds(p *rt.Program) int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 3 * len(p.Ops)
}

func (o OverflowOptions) huntConfig(p *rt.Program, mk func(tracked map[int]bool) siteMonitor) siteHuntConfig {
	return siteHuntConfig{
		seed:          o.Seed,
		evalsPerRound: o.evalsPerRound(),
		maxRounds:     o.maxRounds(p),
		retries:       o.retries(),
		workers:       o.Workers,
		batchSize:     o.workers(),
		lanes:         o.Lanes,
		backend:       o.backend(),
		bounds:        o.Bounds,
		monitor:       mk,
	}
}

// OverflowFinding is one detected overflow: the operation site and an
// input triggering it (a row of Table 4).
type OverflowFinding struct {
	Site  int       `json:"site"`
	Label string    `json:"label"`
	Input []float64 `json:"input"`
}

// OverflowReport is the result of Algorithm 3.
type OverflowReport struct {
	// Findings lists one overflow per detected site, in detection
	// order.
	Findings []OverflowFinding `json:"findings"`
	// Missed lists operation sites for which no overflow was found
	// (unreachable overflows or incompleteness — Table 4's "missed").
	Missed []int `json:"missed"`
	// Ops is the total number of operation sites (|Op| of Table 3).
	Ops int `json:"ops"`
	// Rounds counts minimization rounds; Evals total weak-distance
	// evaluations. Discarded speculative rounds are not charged.
	Rounds int `json:"rounds"`
	Evals  int `json:"evals"`
	// Duration is the wall-clock analysis time (Table 3's T column).
	Duration time.Duration `json:"duration"`
	// Canceled reports the hunt was cut short by context cancellation;
	// Findings lists whatever had been detected by then.
	Canceled bool `json:"canceled,omitempty"`
}

// Found reports whether the site has a detected overflow.
func (r *OverflowReport) Found(site int) bool {
	for _, f := range r.Findings {
		if f.Site == site {
			return true
		}
	}
	return false
}

// DetectOverflows implements Algorithm 3 (the paper's fpod): it tracks
// the set L of handled operation sites, repeatedly minimizes the
// overflow weak distance (which targets the last executed site outside
// L), records an input for every site driven to overflow, and
// terminates when every site is tracked.
func DetectOverflows(ctx context.Context, p *rt.Program, o OverflowOptions) *OverflowReport {
	start := time.Now()
	hunt := runSiteHunt(ctx, p, o.huntConfig(p, func(tracked map[int]bool) siteMonitor {
		return &instrument.Overflow{L: tracked}
	}))

	rep := &OverflowReport{Ops: len(p.Ops), Rounds: hunt.rounds, Evals: hunt.evals, Canceled: hunt.canceled}
	labels := map[int]string{}
	for _, op := range p.Ops {
		labels[op.ID] = op.Label
	}
	for _, f := range hunt.findings {
		rep.Findings = append(rep.Findings, OverflowFinding{
			Site:  f.site,
			Label: labels[f.site],
			Input: f.input,
		})
	}
	for _, op := range p.Ops {
		if !rep.Found(op.ID) {
			rep.Missed = append(rep.Missed, op.ID)
		}
	}
	rep.Duration = time.Since(start)
	return rep
}

// siteMonitor is the weak-distance shape shared by the per-instruction
// hunts (overflow detection, the non-finite/domain-error finder): a
// monitor whose distance targets the last executed operation site
// outside a tracked set.
type siteMonitor interface {
	rt.Monitor
	// LastSite returns the operation site the previous execution
	// effectively targeted; -1 when every executed site was tracked.
	LastSite() int
}

// siteHuntConfig parameterizes runSiteHunt; see OverflowOptions for the
// field semantics. The monitor factory builds a fresh weak-distance
// monitor over a (possibly shared, read-only) tracked-set snapshot.
type siteHuntConfig struct {
	seed          int64
	evalsPerRound int
	maxRounds     int
	retries       int
	workers       int
	batchSize     int
	lanes         int
	backend       opt.Minimizer
	bounds        []opt.Bound
	monitor       func(tracked map[int]bool) siteMonitor
}

// siteFinding is one site driven to its target, with the triggering
// input.
type siteFinding struct {
	site  int
	input []float64
}

// siteHunt is the raw outcome of the Algorithm 3 driver.
type siteHunt struct {
	findings []siteFinding
	rounds   int
	evals    int
	canceled bool
}

// runSiteHunt is the Algorithm 3 state machine, generic over the
// per-instruction weak distance: it tracks the set L of handled
// operation sites, repeatedly minimizes the monitor's distance (which
// targets the last executed site outside L), records an input for every
// site driven to its target, and terminates when every site is tracked,
// the round budget is spent, or repeated rounds make no progress.
//
// Rounds have a sequential dependency through L, so parallelism is
// speculative: batchSize rounds run concurrently against a read-only
// snapshot of L, and speculative results are discarded as soon as a
// consumed round changes L. The outcome is identical for every worker
// count.
func runSiteHunt(ctx context.Context, p *rt.Program, c siteHuntConfig) siteHunt {
	L := map[int]bool{}
	var hunt siteHunt
	retriesLeft := c.retries

	gaveUp := false
	for !gaveUp && hunt.rounds < c.maxRounds && len(L) < len(p.Ops) {
		if ctx.Err() != nil {
			hunt.canceled = true
			break
		}
		// Launch speculative rounds against a read-only snapshot of L.
		// Slot j corresponds to serial round hunt.rounds+j and uses that
		// round's historical seed.
		snapshot := make(map[int]bool, len(L))
		for id := range L {
			snapshot[id] = true
		}
		batchSize := c.batchSize
		if rem := c.maxRounds - hunt.rounds; batchSize > rem {
			batchSize = rem
		}
		batch := opt.ParallelStarts(c.backend, func(int) opt.Objective {
			inst := p.Instance()
			mon := c.monitor(snapshot)
			return opt.Objective(inst.WeakDistance(mon))
		}, p.Dim, opt.ParallelConfig{
			Starts:     batchSize,
			Workers:    c.workers,
			Seed:       c.seed + int64(hunt.rounds)*104729,
			SeedStride: 104729,
			MaxEvals:   c.evalsPerRound,
			Bounds:     c.bounds,
			StopAtZero: true,
			Batch: batchFactory(p, c.lanes, func() rt.Monitor {
				return c.monitor(snapshot)
			}),
			Ctx: ctx,
		})

		// Consume slots in round order, replaying Algorithm 3's state
		// machine; the first slot that mutates L invalidates the rest
		// (their weak distances were built over the stale snapshot).
		for _, sr := range batch {
			if sr.Skipped {
				break
			}
			if sr.Canceled {
				// A cancelled slot holds a truncated round: charge its
				// samples, skip the state machine (its minimum is not a
				// round outcome).
				hunt.evals += sr.Evals
				hunt.canceled = true
				break
			}
			hunt.rounds++
			hunt.evals += sr.Evals

			// Step 7: replay the minimum point to identify the targeted
			// instruction (the last untracked site the execution
			// reached). The snapshot equals L for every consumed slot.
			replayMon := c.monitor(snapshot)
			p.Execute(replayMon, sr.X)
			target := replayMon.LastSite()

			if sr.FoundZero && target >= 0 {
				// Step 6: a genuine hit at the target.
				hunt.findings = append(hunt.findings, siteFinding{
					site:  target,
					input: sr.X,
				})
				L[target] = true
				retriesLeft = c.retries
				break // L changed: remaining slots are stale
			}

			if target < 0 {
				// Every site the execution reaches is already tracked; a
				// fresh random start may reach others, but if the whole
				// round made no progress repeatedly, stop early. The
				// serial loop broke before counting the give-up round
				// (its post-increment never ran), so uncount it here.
				if retriesLeft--; retriesLeft < 0 {
					hunt.rounds--
					gaveUp = true
					break
				}
				if sr.FoundZero {
					// Defensive: a zero whose replay targets nothing
					// means search and replay disagree. Later slots may
					// have been cancelled when this zero landed, so end
					// the batch; the next batch re-runs them with their
					// positional seeds.
					break
				}
				continue
			}

			// Positive minimum: possibly incompleteness. Retry the same
			// target from other starting points before giving it up
			// (adding it to L per the Algorithm 3 termination argument).
			if retriesLeft > 0 {
				retriesLeft--
				continue
			}
			L[target] = true
			retriesLeft = c.retries
			break // L changed: remaining slots are stale
		}
	}
	return hunt
}
