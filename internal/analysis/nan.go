package analysis

import (
	"context"
	"math"
	"time"

	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/rt"
)

// NonFiniteOptions configures FindNonFinite. The knobs are those of
// OverflowOptions — the finder runs the same Algorithm 3 driver with
// the non-finite weak distance.
type NonFiniteOptions = OverflowOptions

// NonFiniteFinding is one detected domain error: an operation site
// driven to a non-finite result, the input triggering it, and the
// IEEE-754 class of the value produced there.
type NonFiniteFinding struct {
	Site  int    `json:"site"`
	Label string `json:"label"`
	// Class is "NaN", "+Inf", or "-Inf".
	Class string    `json:"class"`
	Input []float64 `json:"input"`
}

// NonFiniteReport is the result of the NaN/domain-error finder.
type NonFiniteReport struct {
	// Findings lists one domain error per detected site, in detection
	// order.
	Findings []NonFiniteFinding `json:"findings"`
	// Missed lists operation sites never driven to a non-finite value.
	Missed []int `json:"missed"`
	// Ops is the total number of operation sites.
	Ops int `json:"ops"`
	// Rounds counts minimization rounds; Evals total weak-distance
	// evaluations. Discarded speculative rounds are not charged.
	Rounds int `json:"rounds"`
	Evals  int `json:"evals"`
	// Duration is the wall-clock analysis time.
	Duration time.Duration `json:"duration"`
	// Canceled reports the hunt was cut short by context cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// Found reports whether the site has a detected domain error.
func (r *NonFiniteReport) Found(site int) bool {
	for _, f := range r.Findings {
		if f.Site == site {
			return true
		}
	}
	return false
}

// FindNonFinite is the NaN/domain-error finder: it generates inputs
// driving as many floating-point operations of the program as possible
// to non-finite results (NaN or ±Inf), reusing the Algorithm 3 overflow
// machinery with the instrument.NonFinite weak distance. Each finding
// is classified by replaying its input and recording the value the
// targeted operation produced.
func FindNonFinite(ctx context.Context, p *rt.Program, o NonFiniteOptions) *NonFiniteReport {
	start := time.Now()
	hunt := runSiteHunt(ctx, p, o.huntConfig(p, func(tracked map[int]bool) siteMonitor {
		return &instrument.NonFinite{L: tracked}
	}))

	rep := &NonFiniteReport{Ops: len(p.Ops), Rounds: hunt.rounds, Evals: hunt.evals, Canceled: hunt.canceled}
	labels := map[int]string{}
	for _, op := range p.Ops {
		labels[op.ID] = op.Label
	}
	probe := &opProbe{}
	for _, f := range hunt.findings {
		probe.site = f.site
		p.Execute(probe, f.input)
		rep.Findings = append(rep.Findings, NonFiniteFinding{
			Site:  f.site,
			Label: labels[f.site],
			Class: classifyValue(probe.val),
			Input: f.input,
		})
	}
	for _, op := range p.Ops {
		if !rep.Found(op.ID) {
			rep.Missed = append(rep.Missed, op.ID)
		}
	}
	rep.Duration = time.Since(start)
	return rep
}

func classifyValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return "finite" // defensive: replay disagreed with the search
}

// opProbe replays an execution and records the value produced at one
// operation site. The site may execute many times (loops); the probe
// keeps the latest value and stops at the first non-finite one — the
// event the hunt's weak distance hit zero on.
type opProbe struct {
	site int
	val  float64
}

func (p *opProbe) Reset() {
	p.val = 0
}

func (p *opProbe) Branch(int, fp.CmpOp, float64, float64) {}

func (p *opProbe) FPOp(site int, v float64) bool {
	if site != p.site {
		return false
	}
	p.val = v
	return math.IsNaN(v) || math.IsInf(v, 0)
}

func (p *opProbe) Value() float64 { return 0 }
