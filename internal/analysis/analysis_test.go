package analysis_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/gsl"
	"repro/internal/instrument"
	"repro/internal/libm"
	"repro/internal/opt"
	"repro/internal/progs"
)

func TestBoundaryValuesFig2(t *testing.T) {
	rep := analysis.BoundaryValues(context.Background(), progs.Fig2(), analysis.BoundaryOptions{
		Seed:   1,
		Starts: 8,
		Bounds: []opt.Bound{{Lo: -100, Hi: 100}},
	})
	if rep.BoundaryValues == 0 {
		t.Fatal("no boundary values found")
	}
	if rep.SoundnessViolations != 0 {
		t.Errorf("%d soundness violations", rep.SoundnessViolations)
	}
	// Both branch sites should be triggered (x=1 hits site 0; -3, 2,
	// 0.99…9 hit site 1).
	sites := map[int]bool{}
	for _, c := range rep.Conditions {
		sites[c.Key.Site] = true
	}
	if !sites[progs.Fig2BranchX] || !sites[progs.Fig2BranchY] {
		t.Errorf("conditions triggered: %+v, want both sites", rep.Conditions)
	}
}

func TestBoundaryValuesAreSound(t *testing.T) {
	// §6.2 check (i): every reported boundary value triggers a boundary
	// condition when replayed. The analysis already replays internally;
	// here we re-verify the retained examples independently.
	p := progs.Fig2()
	rep := analysis.BoundaryValues(context.Background(), p, analysis.BoundaryOptions{
		Seed:   2,
		Starts: 6,
		Bounds: []opt.Bound{{Lo: -50, Hi: 50}},
	})
	wit := &instrument.BoundaryWitness{}
	for _, c := range rep.Conditions {
		for _, x := range c.Examples {
			p.Execute(wit, x)
			if len(wit.Sites()) == 0 {
				t.Errorf("reported boundary value %v triggers nothing", x)
			}
		}
	}
}

func TestBoundaryProgressMonotone(t *testing.T) {
	rep := analysis.BoundaryValues(context.Background(), progs.Fig2(), analysis.BoundaryOptions{
		Seed:   3,
		Starts: 6,
		Bounds: []opt.Bound{{Lo: -50, Hi: 50}},
	})
	prev := 0
	for _, pt := range rep.Progress {
		if pt.Conditions != prev+1 {
			t.Fatalf("progress not incremental: %+v", rep.Progress)
		}
		prev = pt.Conditions
	}
}

func TestBoundaryValuesSinAllReachable(t *testing.T) {
	// The §6.2 headline: all 8 reachable boundary conditions of GNU sin
	// are triggered; the ±2^1024 pair is not (unreachable).
	if testing.Short() {
		t.Skip("long-running search")
	}
	rep := analysis.BoundaryValues(context.Background(), libm.SinProgram(), analysis.BoundaryOptions{
		Seed:   4,
		Starts: 48,
	})
	for site := 0; site < 4; site++ {
		for _, neg := range []bool{false, true} {
			c := rep.Condition(site, neg)
			if c == nil {
				t.Errorf("boundary condition site=%d neg=%v not triggered", site, neg)
				continue
			}
			// Reported boundary values must have the right dispatch key.
			for _, x := range c.Examples {
				if libm.KOf(x[0]) != libm.SinThresholds[site] {
					t.Errorf("example %v has k=%#x, want %#x", x[0], libm.KOf(x[0]), libm.SinThresholds[site])
				}
			}
			// And straddle near the reference value (Table 2's min/max).
			ref := libm.SinBoundaryRefs[site]
			lo, hi := math.Abs(c.Min), math.Abs(c.Max)
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < ref*(1-1e-5) || lo > ref*(1+1e-5) {
				t.Errorf("site %d neg=%v: found range [%g,%g] vs ref %g", site, neg, c.Min, c.Max, ref)
			}
		}
	}
	// The unreachable pair.
	if rep.Condition(4, false) != nil || rep.Condition(4, true) != nil {
		t.Error("the 2^1024 boundary must be unreachable")
	}
	if rep.SoundnessViolations != 0 {
		t.Errorf("%d soundness violations", rep.SoundnessViolations)
	}
}

func TestReachPathFig2(t *testing.T) {
	r := analysis.ReachPath(context.Background(), progs.Fig2(), []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}, analysis.ReachOptions{Seed: 5, Bounds: []opt.Bound{{Lo: -1000, Hi: 1000}}})
	if !r.Found {
		t.Fatalf("path not reached: %v", r)
	}
	if x := r.X[0]; x < -3 || x > 1 {
		t.Errorf("solution %v outside [-3,1]", x)
	}
}

func TestReachPathInfeasible(t *testing.T) {
	// x <= 1 taken and (after x++) y = x*x <= 4 NOT taken requires
	// x in (-inf,-3) ∪ ... wait: x <= 1, then y = (x+1)^2 > 4 → x < -3.
	// That IS feasible. An infeasible target: branch 0 taken and not
	// taken is impossible in one run — use site 0 twice.
	r := analysis.ReachPath(context.Background(), progs.Fig2(), []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchX, Taken: false}, // site 0 never re-executes
	}, analysis.ReachOptions{
		Seed: 6, Starts: 2, EvalsPerStart: 2000,
		Bounds: []opt.Bound{{Lo: -10, Hi: 10}},
	})
	if r.Found {
		t.Errorf("infeasible path reported reachable at %v", r.X)
	}
}

func TestReachEqZeroNeedsULP(t *testing.T) {
	// §5.2: reaching `if (x == 0)` with the real-valued distance works
	// too (distance |x-0|), but the ULP variant must land exactly.
	r := analysis.ReachPath(context.Background(), progs.EqZero(), []instrument.Decision{
		{Site: progs.EqZeroBranch, Taken: true},
	}, analysis.ReachOptions{Seed: 7, ULP: true, Bounds: []opt.Bound{{Lo: -1, Hi: 1}}})
	if !r.Found {
		t.Fatalf("x == 0 not reached: %v", r)
	}
	if r.X[0] != 0 {
		t.Errorf("solution %v, want exactly 0", r.X[0])
	}
}

func TestAssertionViolationFig1a(t *testing.T) {
	// The paper's §1 motivating analysis: find x with x < 1 whose
	// assert(x < 2) fails after x = x + 1.
	r := analysis.AssertionViolations(context.Background(), progs.Fig1a(), []instrument.Decision{
		{Site: progs.Fig1BranchLT1, Taken: true},
		{Site: progs.Fig1BranchLT2, Taken: false},
	}, analysis.ReachOptions{Seed: 8, Bounds: []opt.Bound{{Lo: -10, Hi: 10}}})
	if !r.Found {
		t.Fatalf("assertion violation not found: %v", r)
	}
	chk := progs.Fig1aCheck(r.X[0])
	if !chk.Entered || !chk.Violated {
		t.Errorf("input %v does not violate the assertion: %+v", r.X[0], chk)
	}
	// The only violating input is the predecessor of 1.
	if r.X[0] != 0.9999999999999999 {
		t.Errorf("violating input %v, expected 0.9999999999999999", r.X[0])
	}
}

func TestAssertionViolationFig1b(t *testing.T) {
	// Fig. 1(b): x = x + tan(x) — the variant that defeats SMT-based
	// reasoning but is routine for execution-based search.
	r := analysis.AssertionViolations(context.Background(), progs.Fig1b(), []instrument.Decision{
		{Site: progs.Fig1BranchLT1, Taken: true},
		{Site: progs.Fig1BranchLT2, Taken: false},
	}, analysis.ReachOptions{Seed: 9, Bounds: []opt.Bound{{Lo: -10, Hi: 1}}})
	if !r.Found {
		t.Fatalf("assertion violation not found: %v", r)
	}
	chk := progs.Fig1bCheck(r.X[0])
	if !chk.Entered || !chk.Violated {
		t.Errorf("input %v does not violate: %+v", r.X[0], chk)
	}
}

func TestDetectOverflowsFig2(t *testing.T) {
	rep := analysis.DetectOverflows(context.Background(), progs.Fig2(), analysis.OverflowOptions{Seed: 10})
	// x+1 overflows at x = -MAX (guard x <= 1 holds there; the sum's
	// magnitude stays at MAX) and x*x at |x| > ~1.3e154. x-1 can NEVER
	// overflow: it only executes when y = x*x <= 4, which confines its
	// operand to [-2, 2] — Algorithm 3 must give the target up and
	// report it missed.
	for _, site := range []int{progs.Fig2OpInc, progs.Fig2OpSquare} {
		if !rep.Found(site) {
			t.Errorf("op %d not driven to overflow; findings %+v", site, rep.Findings)
		}
	}
	if rep.Found(progs.Fig2OpDec) {
		t.Errorf("x-1 cannot overflow (guarded by y <= 4), but was reported: %+v", rep.Findings)
	}
	if len(rep.Missed) != 1 || rep.Missed[0] != progs.Fig2OpDec {
		t.Errorf("Missed = %v, want [%d]", rep.Missed, progs.Fig2OpDec)
	}
	if rep.Ops != 3 {
		t.Errorf("Ops = %d", rep.Ops)
	}
}

func TestDetectOverflowsBessel(t *testing.T) {
	// The §6.3 headline: overflows on >= 21 of the 23 Bessel operations;
	// the constant product 2.0*GSL_DBL_EPSILON can never overflow.
	if testing.Short() {
		t.Skip("long-running search")
	}
	rep := analysis.DetectOverflows(context.Background(), gsl.BesselProgram(), analysis.OverflowOptions{
		Seed: 11, EvalsPerRound: 8000,
	})
	if got := len(rep.Findings); got < 21 {
		missed := ""
		for _, s := range rep.Missed {
			missed += "\n  missed: " + gsl.BesselOpLabel(s)
		}
		t.Errorf("found %d/23 overflows, want >= 21%s", got, missed)
	}
	if rep.Found(gsl.BesselOpErrEps) {
		t.Error("constant product 2.0*EPSILON cannot overflow")
	}
	// Every finding must replay to an actual overflow at its site.
	for _, f := range rep.Findings {
		if !replayOverflows(t, f) {
			t.Errorf("finding at site %d (%s) does not replay: input %v", f.Site, f.Label, f.Input)
		}
	}
}

func replayOverflows(t *testing.T, f analysis.OverflowFinding) bool {
	t.Helper()
	p := gsl.BesselProgram()
	m := instrument.NewOverflow()
	// Track everything except the finding's site, so the monitor
	// reports exactly whether that site overflows.
	for _, op := range p.Ops {
		if op.ID != f.Site {
			m.L[op.ID] = true
		}
	}
	return p.Execute(m, f.Input) == 0
}

func TestCoverFig2(t *testing.T) {
	rep := analysis.Cover(context.Background(), progs.Fig2(), analysis.CoverOptions{
		Seed: 12, Bounds: []opt.Bound{{Lo: -1000, Hi: 1000}},
	})
	if len(rep.Covered) != rep.Total || rep.Total != 4 {
		t.Errorf("covered %d/%d sides: %+v", len(rep.Covered), rep.Total, rep.Covered)
	}
	if rep.Ratio() != 1 {
		t.Errorf("ratio %v", rep.Ratio())
	}
	// Each recorded input must actually take its side when replayed.
	for side, in := range rep.Inputs {
		rec := &instrument.RecordNewSides{Covered: map[instrument.Side]bool{}}
		progs.Fig2().Execute(rec, in)
		found := false
		for _, s := range rec.Sides() {
			if s == side {
				found = true
			}
		}
		if !found {
			t.Errorf("input %v does not take side %+v", in, side)
		}
	}
}

func TestCheckInconsistenciesAiry(t *testing.T) {
	inputs := [][]float64{
		{-1.8427611519777440}, // Bug 1
		{-1.14e34},            // Bug 2 class (huge negative)
		{0.5},                 // benign
		{-1.84276115198},      // perturbed: no longer triggers
	}
	incs := analysis.CheckInconsistencies(func(x []float64) (gsl.Result, gsl.Status) {
		return gsl.AiryAi(x[0])
	}, inputs)
	if len(incs) < 1 {
		t.Fatal("no inconsistencies found")
	}
	for _, inc := range incs {
		if inc.Input[0] == 0.5 || inc.Input[0] == -1.84276115198 {
			t.Errorf("benign input flagged: %+v", inc)
		}
		if inc.Cause == "consistent" {
			t.Errorf("inconsistency with 'consistent' cause: %+v", inc)
		}
	}
	// Bug 1 must be among them.
	found := false
	for _, inc := range incs {
		if inc.Input[0] == -1.8427611519777440 {
			found = true
		}
	}
	if !found {
		t.Error("Bug 1 input not flagged")
	}
}

func TestCheckInconsistenciesDedup(t *testing.T) {
	in := [][]float64{{-1.8427611519777440}, {-1.8427611519777440}}
	incs := analysis.CheckInconsistencies(func(x []float64) (gsl.Result, gsl.Status) {
		return gsl.AiryAi(x[0])
	}, in)
	if len(incs) != 1 {
		t.Errorf("dedup failed: %d findings", len(incs))
	}
}
