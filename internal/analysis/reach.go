package analysis

import (
	"context"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

// ReachOptions configures ReachPath.
type ReachOptions struct {
	// Seed makes the run deterministic.
	Seed int64
	// Starts is the number of restarts; zero selects 8.
	Starts int
	// EvalsPerStart bounds evaluations per restart; zero selects
	// 20000 * dim.
	EvalsPerStart int
	// Backend is the MO backend; nil selects Basinhopping.
	Backend opt.Minimizer
	// Bounds optionally restricts the input space.
	Bounds []opt.Bound
	// ULP selects ULP branch distances (Limitation-2 mitigation; makes
	// equality-guarded paths like `if (x == 0)` soundly reachable).
	ULP bool
	// Workers sets multi-start parallelism: 0 selects runtime.NumCPU(),
	// 1 forces the serial loop. The result is identical for every
	// value — the solver reports the lowest-index restart that reaches
	// the path, exactly as the serial loop does.
	Workers int
	// Lanes sets the batch evaluation width: each restart's weak
	// distance evaluates candidate batches as lane-parallel VM sweeps
	// of up to Lanes inputs. 0 or 1 keeps the scalar path; the result
	// is identical for every value.
	Lanes int
}

// ReachPath searches for an input driving the program along the target
// path (§4.3): it minimizes the additive path weak distance and
// re-verifies any zero by replaying the decision sequence (the §5.2
// membership guard). The context cancels the search at evaluation
// granularity.
func ReachPath(ctx context.Context, p *rt.Program, target []instrument.Decision, o ReachOptions) core.Result {
	mon := &instrument.Path{Target: target, ULP: o.ULP}
	prob := core.Problem{
		Name: p.Name + "-reach",
		Dim:  p.Dim,
		W:    p.WeakDistance(mon),
		// Each parallel restart minimizes its own weak-distance instance
		// (own monitor, own program instance for interpreter-backed
		// programs), so no execution state is shared across workers.
		NewW: func() core.WeakDistance {
			inst := p.Instance()
			return inst.WeakDistance(&instrument.Path{Target: target, ULP: o.ULP})
		},
		NewBatchW: func(lanes int) opt.BatchObjective {
			return batchObjective(p, lanes, func() rt.Monitor {
				return &instrument.Path{Target: target, ULP: o.ULP}
			})
		},
		Member: func(x []float64) bool {
			inst := p.Instance()
			wit := &instrument.PathWitness{}
			inst.Execute(wit, x)
			return wit.Matches(target)
		},
	}
	return core.Solve(ctx, prob, core.Options{
		Backend:       o.Backend,
		Starts:        o.Starts,
		EvalsPerStart: o.EvalsPerStart,
		Seed:          o.Seed,
		Bounds:        o.Bounds,
		Workers:       o.Workers,
		Lanes:         o.Lanes,
	})
}

// AssertionViolations searches for inputs violating an assert guarded
// by a path: the target path is the prefix reaching the assertion plus
// the assertion's condition branch taken the *failing* way. This is the
// Fig. 1 analysis: "can assert(x < 2) fail?" becomes path reachability
// of [x < 1 taken; x < 2 not taken].
func AssertionViolations(ctx context.Context, p *rt.Program, target []instrument.Decision, o ReachOptions) core.Result {
	return ReachPath(ctx, p, target, o)
}
