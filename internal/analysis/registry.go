package analysis

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
	"repro/internal/sat"
)

// Spec is the uniform, JSON-serializable configuration of a registered
// analysis: one vocabulary of knobs shared by every analysis (the
// paper's point — all five instances are the same minimize-a-weak-
// distance problem), with per-analysis defaults supplied by
// DefaultSpec. Zero values select the analysis defaults throughout.
type Spec struct {
	// Analysis names the registered analysis to run.
	Analysis string `json:"analysis,omitempty"`
	// Seed makes the run deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Starts is the number of minimization restarts (multi-start
	// analyses: bva, reach, xsat).
	Starts int `json:"starts,omitempty"`
	// Evals bounds weak-distance evaluations per restart or round.
	Evals int `json:"evals,omitempty"`
	// Rounds caps minimization rounds (overflow, nan; 0 = 3 × ops).
	Rounds int `json:"rounds,omitempty"`
	// Stall stops coverage after this many rounds without progress.
	Stall int `json:"stall,omitempty"`
	// Retries relaunches a failing target from fresh starting points
	// (overflow, nan; 0 = 3).
	Retries int `json:"retries,omitempty"`
	// Bounds optionally restricts the input space. A single bound is
	// broadcast over all dimensions by the CLI/pipeline loaders.
	Bounds []opt.Bound `json:"bounds,omitempty"`
	// Backend names the MO backend (see opt.BackendNames; "" selects
	// basinhopping).
	Backend string `json:"backend,omitempty"`
	// StallWindow tunes the portfolio scheduler's plateau window in
	// weak-distance evaluations (backend "portfolio" only; 0 selects
	// 400 × dim).
	StallWindow int `json:"stallWindow,omitempty"`
	// StallRatio tunes the portfolio scheduler's minimum relative
	// best-objective decay per window (backend "portfolio" only; 0
	// selects 0.01).
	StallRatio float64 `json:"stallRatio,omitempty"`
	// ULP selects ULP branch/boundary distances (Limitation-2
	// mitigation).
	ULP bool `json:"ulp,omitempty"`
	// HighPrecision accumulates multiplicative distances in scaled
	// double-double arithmetic (bva), eliminating spurious zeros from
	// product underflow — the §5.2 mitigation of Limitation 2. With it
	// (or ULP), every reported zero provably carries a witness.
	HighPrecision bool `json:"highPrecision,omitempty"`
	// RealDist selects real-valued |l-r| atom distances for xsat.
	RealDist bool `json:"realDist,omitempty"`
	// Workers sets intra-analysis parallelism: 0 selects
	// runtime.NumCPU(), 1 forces serial. Reports are identical for
	// every value.
	Workers int `json:"workers,omitempty"`
	// Lanes sets the batch evaluation width: weak distances evaluate
	// candidate batches as lane-parallel VM sweeps of up to Lanes
	// inputs per sweep. 0 or 1 keeps the scalar path; reports are
	// identical for every value (the batch contract is bit-identity).
	// Formula-based analyses (xsat) ignore it.
	Lanes int `json:"lanes,omitempty"`
	// Engine selects the FPL execution engine ("vm" or "tree"); used by
	// the program loaders, not the analyses themselves.
	Engine string `json:"engine,omitempty"`
	// Path is the target decision sequence (reach).
	Path []instrument.Decision `json:"path,omitempty"`
	// Formula is the CNF source (xsat).
	Formula string `json:"formula,omitempty"`
}

// backend resolves the spec's backend name and applies the portfolio
// stall knobs, typing failures as field-level SpecErrors.
func (s Spec) backend() (opt.Minimizer, error) {
	be, err := opt.BackendByName(s.Backend)
	if err != nil {
		return nil, &SpecError{Field: "backend", Value: s.Backend, Reason: err.Error()}
	}
	if s.StallWindow < 0 {
		return nil, &SpecError{Field: "stallWindow", Value: fmt.Sprint(s.StallWindow), Reason: "stallWindow must be >= 0"}
	}
	if s.StallRatio < 0 || s.StallRatio >= 1 {
		return nil, &SpecError{Field: "stallRatio", Value: fmt.Sprint(s.StallRatio), Reason: "stallRatio must be in [0, 1)"}
	}
	if s.StallWindow > 0 || s.StallRatio > 0 {
		pf, ok := opt.AsPortfolio(be)
		if !ok {
			field := "stallWindow"
			if s.StallWindow == 0 {
				field = "stallRatio"
			}
			return nil, &SpecError{Field: field,
				Reason: fmt.Sprintf("stall knobs tune the portfolio scheduler; backend is %q (want portfolio)", s.Backend)}
		}
		pf.StallWindow = s.StallWindow
		pf.StallRatio = s.StallRatio
	}
	return be, nil
}

// ValidateBackend checks the backend name and the portfolio stall
// knobs without running anything. Submit-time validators (the /v1 job
// API) use it to reject knob misuse with a field-located error before
// a job executes; Run performs the same checks itself.
func (s Spec) ValidateBackend() *SpecError {
	if _, err := s.backend(); err != nil {
		if spe, ok := err.(*SpecError); ok {
			return spe
		}
		return &SpecError{Field: "backend", Value: s.Backend, Reason: err.Error()}
	}
	return nil
}

// Input is what a registered analysis runs on.
type Input struct {
	// Program is the instrumentable program (nil for formula-based
	// analyses).
	Program *rt.Program
	// SF, when non-nil, is the concrete GSL-convention function behind
	// the program, enabling the §6.3.2 inconsistency replay.
	SF SFFunc
}

// Report is the typed result of a registered analysis. Concrete report
// types are JSON-serializable.
type Report interface {
	// Summary is a one-line human description of the outcome.
	Summary() string
	// Render writes the full human-readable report. The five legacy
	// analyses render byte-identically to their historical CLI output.
	Render(w io.Writer, in Input)
	// Failed reports a shell-visible negative outcome (path not
	// reached, formula not decided) — the legacy exit-code-2 cases.
	Failed() bool
	// Interrupted reports that the analysis observed context
	// cancellation and the report covers only the work done up to that
	// point. A completed report is never Interrupted, even if the
	// context fired after the analysis returned.
	Interrupted() bool
}

// Knobs declares which Spec fields an analysis consumes. It drives the
// registry-driven CLI flag registration (cli.SpecFlags): a new analysis
// gets its command-line surface for free.
type Knobs struct {
	// Program: the analysis runs on a program (-builtin / FPL source).
	Program bool
	// Starts / Stall / Rounds: which budget knobs apply.
	Starts bool
	Stall  bool
	Rounds bool
	// ULP / HighPrecision / RealDist: which distance-metric toggles
	// apply.
	ULP           bool
	HighPrecision bool
	RealDist      bool
	// Path: the analysis needs a target decision sequence.
	Path bool
	// Formula: the analysis runs on a CNF formula instead of a program.
	Formula bool
}

// Analysis is one registered weak-distance analysis.
type Analysis interface {
	// Name is the canonical registry name.
	Name() string
	// Describe is a one-line description for listings.
	Describe() string
	// DefaultSpec returns the analysis' default configuration (the
	// historical CLI flag defaults).
	DefaultSpec() Spec
	// Knobs declares which Spec fields the analysis consumes.
	Knobs() Knobs
	// Run executes the analysis. The context cancels it cooperatively at
	// weak-distance-evaluation granularity: when ctx fires, Run returns
	// promptly with a partial report marked as cancelled rather than an
	// error.
	Run(ctx context.Context, in Input, spec Spec) (Report, error)
}

var registry = struct {
	sync.RWMutex
	byName  map[string]Analysis
	aliases map[string]string
	order   []string
}{
	byName:  map[string]Analysis{},
	aliases: map[string]string{},
}

// Register adds an analysis (and optional alias spellings) to the
// registry. It panics on any name or alias collision — registration is
// an init-time affair, and a shadowed analysis must fail fast, not
// become silently unreachable.
func Register(a Analysis, aliases ...string) {
	registry.Lock()
	defer registry.Unlock()
	name := a.Name()
	taken := func(key string) bool {
		_, n := registry.byName[key]
		_, al := registry.aliases[key]
		return n || al
	}
	if taken(name) {
		panic("analysis: duplicate registration of " + name)
	}
	for _, al := range aliases {
		if al == name || taken(al) {
			panic("analysis: alias " + al + " of " + name + " collides with an existing registration")
		}
	}
	registry.byName[name] = a
	registry.order = append(registry.order, name)
	for _, al := range aliases {
		registry.aliases[al] = name
	}
}

// Lookup resolves an analysis by canonical name or alias
// (case-insensitive; canonical names win). The error lists the
// registered names.
func Lookup(name string) (Analysis, error) {
	registry.RLock()
	defer registry.RUnlock()
	key := strings.ToLower(name)
	if a, ok := registry.byName[key]; ok {
		return a, nil
	}
	if canon, ok := registry.aliases[key]; ok {
		if a, ok := registry.byName[canon]; ok {
			return a, nil
		}
	}
	return nil, &SpecError{Field: "analysis", Value: name,
		Reason: fmt.Sprintf("unknown analysis %q (available: %s)", name, strings.Join(namesLocked(), ", "))}
}

// Names lists the registered analyses in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, len(registry.order))
	copy(names, registry.order)
	return names
}

// All returns the registered analyses in registration order.
func All() []Analysis {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Analysis, 0, len(registry.order))
	for _, n := range registry.order {
		out = append(out, registry.byName[n])
	}
	return out
}

func init() {
	Register(bvaAnalysis{}, "boundary", "fpbva")
	Register(coverageAnalysis{}, "cover", "coverme")
	Register(overflowAnalysis{}, "fpod")
	Register(reachAnalysis{}, "fpreach", "path")
	Register(xsatAnalysis{}, "sat")
	Register(nanAnalysis{}, "nonfinite", "domain")
}

func needProgram(name string, in Input) (*rt.Program, error) {
	if in.Program == nil {
		return nil, &SpecError{Field: "program",
			Reason: fmt.Sprintf("%s: no program (pass -builtin NAME or an FPL source)", name)}
	}
	return in.Program, nil
}

// --- Boundary value analysis ---

type bvaAnalysis struct{}

func (bvaAnalysis) Name() string { return "bva" }
func (bvaAnalysis) Describe() string {
	return "boundary value analysis: inputs sitting exactly on branch boundaries (§4.2, §6.2)"
}
func (bvaAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "bva", Seed: 1, Starts: 32, Evals: 4000, Backend: "basinhopping"}
}
func (bvaAnalysis) Knobs() Knobs {
	return Knobs{Program: true, Starts: true, ULP: true, HighPrecision: true}
}
func (bvaAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	p, err := needProgram("bva", in)
	if err != nil {
		return nil, err
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	return BoundaryValues(ctx, p, BoundaryOptions{
		Seed:          s.Seed,
		Starts:        s.Starts,
		EvalsPerStart: s.Evals,
		Backend:       be,
		Bounds:        s.Bounds,
		ULP:           s.ULP,
		HighPrecision: s.HighPrecision,
		Workers:       s.Workers,
		Lanes:         s.Lanes,
	}), nil
}

// --- Branch-coverage testing ---

type coverageAnalysis struct{}

func (coverageAnalysis) Name() string { return "coverage" }
func (coverageAnalysis) Describe() string {
	return "branch-coverage testing: inputs covering both sides of every branch (§2 Instance 4)"
}
func (coverageAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "coverage", Seed: 1, Evals: 4000, Stall: 6, Backend: "basinhopping"}
}
func (coverageAnalysis) Knobs() Knobs { return Knobs{Program: true, Stall: true, ULP: true} }
func (coverageAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	p, err := needProgram("coverage", in)
	if err != nil {
		return nil, err
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	return Cover(ctx, p, CoverOptions{
		Seed:          s.Seed,
		EvalsPerRound: s.Evals,
		MaxStall:      s.Stall,
		Backend:       be,
		Bounds:        s.Bounds,
		ULP:           s.ULP,
		Workers:       s.Workers,
		Lanes:         s.Lanes,
	}), nil
}

// --- Overflow detection ---

// OverflowRun is the overflow report plus the §6.3.2 inconsistency
// replay, performed when the input carried a concrete special function.
type OverflowRun struct {
	*OverflowReport
	// SFChecked reports whether the inconsistency replay ran.
	SFChecked bool `json:"sfChecked"`
	// Inconsistencies are the replayed findings whose status claims
	// success while the result is non-finite.
	Inconsistencies []Inconsistency `json:"inconsistencies,omitempty"`
}

type overflowAnalysis struct{}

func (overflowAnalysis) Name() string { return "overflow" }
func (overflowAnalysis) Describe() string {
	return "overflow detection: inputs overflowing as many FP operations as possible (Algorithm 3, §6.3)"
}
func (overflowAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "overflow", Seed: 1, Evals: 6000, Backend: "basinhopping"}
}
func (overflowAnalysis) Knobs() Knobs { return Knobs{Program: true, Rounds: true} }
func (overflowAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	p, err := needProgram("overflow", in)
	if err != nil {
		return nil, err
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	rep := DetectOverflows(ctx, p, OverflowOptions{
		Seed:             s.Seed,
		EvalsPerRound:    s.Evals,
		MaxRounds:        s.Rounds,
		Backend:          be,
		Bounds:           s.Bounds,
		RetriesPerTarget: s.Retries,
		Workers:          s.Workers,
		Lanes:            s.Lanes,
	})
	run := &OverflowRun{OverflowReport: rep}
	if in.SF != nil {
		var inputs [][]float64
		for _, f := range rep.Findings {
			inputs = append(inputs, f.Input)
		}
		run.SFChecked = true
		run.Inconsistencies = CheckInconsistenciesWorkers(in.SF, inputs, s.Workers)
	}
	return run, nil
}

// --- Path reachability ---

// ReachRun is the reach outcome together with the program and target it
// answers for.
type ReachRun struct {
	core.Result `json:"result"`
	Program     string                `json:"program"`
	Target      []instrument.Decision `json:"target"`
}

type reachAnalysis struct{}

func (reachAnalysis) Name() string { return "reach" }
func (reachAnalysis) Describe() string {
	return "path reachability: an input driving execution along a target decision sequence (§4.3)"
}
func (reachAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "reach", Seed: 1, Starts: 8, Backend: "basinhopping"}
}
func (reachAnalysis) Knobs() Knobs {
	return Knobs{Program: true, Starts: true, ULP: true, Path: true}
}
func (reachAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	p, err := needProgram("reach", in)
	if err != nil {
		return nil, err
	}
	if len(s.Path) == 0 {
		return nil, &SpecError{Field: "path", Reason: "empty path; want e.g. 0:t,1:f"}
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	r := ReachPath(ctx, p, s.Path, ReachOptions{
		Seed:          s.Seed,
		Starts:        s.Starts,
		EvalsPerStart: s.Evals,
		Backend:       be,
		Bounds:        s.Bounds,
		ULP:           s.ULP,
		Workers:       s.Workers,
		Lanes:         s.Lanes,
	})
	return &ReachRun{Result: r, Program: p.Name, Target: s.Path}, nil
}

// --- Floating-point satisfiability ---

// SatRun is the xsat outcome plus the variable-name binding of the
// parsed formula.
type SatRun struct {
	sat.Result
	// Vars maps source variable names to model indices.
	Vars map[string]int `json:"vars,omitempty"`
}

type xsatAnalysis struct{}

func (xsatAnalysis) Name() string { return "xsat" }
func (xsatAnalysis) Describe() string {
	return "floating-point satisfiability: decide a CNF over FP expressions (§2 Instance 5)"
}
func (xsatAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "xsat", Seed: 1, Starts: 8, Backend: "basinhopping"}
}
func (xsatAnalysis) Knobs() Knobs {
	return Knobs{Starts: true, RealDist: true, Formula: true}
}
func (xsatAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	if strings.TrimSpace(s.Formula) == "" {
		return nil, &SpecError{Field: "formula", Reason: "xsat: empty formula"}
	}
	f, vars, err := sat.Parse(s.Formula)
	if err != nil {
		return nil, &SpecError{Field: "formula", Value: s.Formula, Reason: err.Error()}
	}
	bounds := s.Bounds
	if f.Dim() > 0 {
		bounds, err = opt.BroadcastBounds(bounds, f.Dim())
		if err != nil {
			return nil, &SpecError{Field: "bounds", Reason: err.Error()}
		}
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	r := sat.Solve(ctx, f, sat.Options{
		Seed:          s.Seed,
		Starts:        s.Starts,
		EvalsPerStart: s.Evals,
		Backend:       be,
		Bounds:        bounds,
		RealDist:      s.RealDist,
		Workers:       s.Workers,
		// Spec.Lanes is deliberately not threaded: xsat evaluates parsed
		// formulas, not VM programs, so there is no lane sweep to batch.
	})
	return &SatRun{Result: r, Vars: vars}, nil
}

// --- NaN / domain-error finding (the registry's analysis #6) ---

type nanAnalysis struct{}

func (nanAnalysis) Name() string { return "nan" }
func (nanAnalysis) Describe() string {
	return "NaN/domain-error finding: inputs driving FP operations to non-finite results (NaN, ±Inf)"
}
func (nanAnalysis) DefaultSpec() Spec {
	return Spec{Analysis: "nan", Seed: 1, Evals: 6000, Backend: "basinhopping"}
}
func (nanAnalysis) Knobs() Knobs { return Knobs{Program: true, Rounds: true} }
func (nanAnalysis) Run(ctx context.Context, in Input, s Spec) (Report, error) {
	p, err := needProgram("nan", in)
	if err != nil {
		return nil, err
	}
	be, err := s.backend()
	if err != nil {
		return nil, err
	}
	return FindNonFinite(ctx, p, NonFiniteOptions{
		Seed:             s.Seed,
		EvalsPerRound:    s.Evals,
		MaxRounds:        s.Rounds,
		Backend:          be,
		Bounds:           s.Bounds,
		RetriesPerTarget: s.Retries,
		Workers:          s.Workers,
		Lanes:            s.Lanes,
	}), nil
}
