package analysis

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/gsl"
)

// SFFunc is a GSL-convention special function: inputs to (result,
// status).
type SFFunc func(x []float64) (gsl.Result, gsl.Status)

// Inconsistency is a §6.3.2 finding: a run whose status claims success
// while the result carries non-finite values.
type Inconsistency struct {
	Input  []float64
	Val    float64
	Err    float64
	Status gsl.Status
	// Cause is a best-effort classification (Table 5's root-cause
	// column), filled by the caller or by Classify.
	Cause string
}

// CheckInconsistencies replays candidate inputs (typically the overflow
// findings of Algorithm 3) through the concrete function and returns
// the inconsistent ones — the |I| column of Table 3. Replays run on
// runtime.NumCPU() workers; see CheckInconsistenciesWorkers.
func CheckInconsistencies(fn SFFunc, inputs [][]float64) []Inconsistency {
	return CheckInconsistenciesWorkers(fn, inputs, 0)
}

// CheckInconsistenciesWorkers is CheckInconsistencies with an explicit
// worker count (0 selects runtime.NumCPU(), 1 forces serial). Each
// input replays independently — fn must be safe for concurrent calls,
// which the pure GSL ports are — and results are collected in input
// order, so the output is identical for every worker count.
func CheckInconsistenciesWorkers(fn SFFunc, inputs [][]float64, workers int) []Inconsistency {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}

	type replay struct {
		res gsl.Result
		st  gsl.Status
		bad bool
	}
	replays := make([]replay, len(inputs))
	if workers > 1 {
		jobs := make(chan int, len(inputs))
		for i := range inputs {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					res, st := fn(inputs[i])
					replays[i] = replay{res: res, st: st, bad: gsl.Inconsistent(res, st)}
				}
			}()
		}
		wg.Wait()
	} else {
		for i, in := range inputs {
			res, st := fn(in)
			replays[i] = replay{res: res, st: st, bad: gsl.Inconsistent(res, st)}
		}
	}

	var out []Inconsistency
	seen := map[string]bool{}
	for i, in := range inputs {
		r := replays[i]
		if !r.bad {
			continue
		}
		key := fingerprint(in)
		if seen[key] {
			continue
		}
		seen[key] = true
		x := make([]float64, len(in))
		copy(x, in)
		out = append(out, Inconsistency{
			Input:  x,
			Val:    r.res.Val,
			Err:    r.res.Err,
			Status: r.st,
			Cause:  Classify(r.res),
		})
	}
	return out
}

// Classify gives the coarse root-cause label used in Table 5's last
// column based on the result's failure signature. Deeper attribution
// (which operand overflowed) comes from the overflow findings
// themselves.
func Classify(res gsl.Result) string {
	switch {
	case math.IsNaN(res.Val):
		return "NaN result (invalid operation, e.g. negative sqrt or Inf*0)"
	case math.IsInf(res.Val, 0):
		return "overflowed value with GSL_SUCCESS"
	case math.IsInf(res.Err, 0):
		return "overflowed error estimate (e.g. division by vanished term)"
	case math.IsNaN(res.Err):
		return "NaN error estimate"
	}
	return "consistent"
}

func fingerprint(x []float64) string {
	b := make([]byte, 0, len(x)*8)
	for _, v := range x {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(u>>(8*i)))
		}
	}
	return string(b)
}
