package analysis_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/rt"
)

// compileFig2 builds the interpreter-backed Fig. 2 twin, so the tests
// cover both substrates: stateless native ports (shared across workers)
// and interpreter programs (forked per start).
func compileFig2(t *testing.T) *rt.Program {
	t.Helper()
	const src = `
func prog(x double) {
    if (x <= 1.0) { x = x + 1.0; }
    var y double = x * x;
    if (y <= 4.0) { x = x - 1.0; }
}`
	mod, err := ir.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.New(mod).Program("prog")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWorkersDeterminism is the determinism table test: for a fixed
// seed, every analysis client must report identical findings at
// Workers=1 (the old serial path) and Workers=8, over both the native
// and the interpreter-backed Fig. 2.
func TestWorkersDeterminism(t *testing.T) {
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	programs := []struct {
		name string
		p    *rt.Program
	}{
		{"native", progs.Fig2()},
		{"interp", compileFig2(t)},
	}
	for _, pr := range programs {
		t.Run("boundary/"+pr.name, func(t *testing.T) {
			run := func(workers int) *analysis.BoundaryReport {
				return analysis.BoundaryValues(context.Background(), pr.p, analysis.BoundaryOptions{
					Seed: 11, Starts: 8, EvalsPerStart: 1000, Bounds: bounds,
					Workers: workers,
				})
			}
			serial, parallel := run(1), run(8)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("boundary reports differ:\nserial   %+v\nparallel %+v", serial, parallel)
			}
			if serial.BoundaryValues == 0 {
				t.Error("no boundary values found (vacuous comparison)")
			}
		})
		t.Run("coverage/"+pr.name, func(t *testing.T) {
			run := func(workers int) *analysis.CoverReport {
				return analysis.Cover(context.Background(), pr.p, analysis.CoverOptions{
					Seed: 12, EvalsPerRound: 1000, Bounds: bounds,
					Workers: workers,
				})
			}
			serial, parallel := run(1), run(8)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("cover reports differ:\nserial   %+v\nparallel %+v", serial, parallel)
			}
			if serial.Ratio() != 1 {
				t.Errorf("coverage %v (vacuous comparison)", serial.Ratio())
			}
		})
		t.Run("overflow/"+pr.name, func(t *testing.T) {
			run := func(workers int) *analysis.OverflowReport {
				rep := analysis.DetectOverflows(context.Background(), pr.p, analysis.OverflowOptions{
					Seed: 13, EvalsPerRound: 1500, Workers: workers,
				})
				rep.Duration = 0 // wall clock is the one legitimately varying field
				return rep
			}
			serial, parallel := run(1), run(8)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("overflow reports differ:\nserial   %+v\nparallel %+v", serial, parallel)
			}
			if len(serial.Findings) == 0 {
				t.Error("no overflows found (vacuous comparison)")
			}
		})
		t.Run("reach/"+pr.name, func(t *testing.T) {
			// x <= 1 taken, y <= 4 not taken: (x+1)^2 > 4, i.e. x < -3.
			target := []instrument.Decision{
				{Site: 0, Taken: true},
				{Site: 1, Taken: false},
			}
			run := func(workers int) core.Result {
				return analysis.ReachPath(context.Background(), pr.p, target, analysis.ReachOptions{
					Seed: 14, Starts: 8, EvalsPerStart: 2000, Bounds: bounds,
					Workers: workers,
				})
			}
			serial, parallel := run(1), run(8)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("reach results differ:\nserial   %+v\nparallel %+v", serial, parallel)
			}
			if !serial.Found {
				t.Error("path not reached (vacuous comparison)")
			}
		})
	}
}
