package analysis_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/rt"
)

// Integration tests running every analysis over FPL programs loaded
// from testdata — the full Client → Reduction Kernel pipeline with
// automatic instrumentation.

func loadTestdata(t *testing.T, name, fn string) (*interp.Interp, *rt.Program) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ir.Compile(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	it := interp.New(mod)
	p, err := it.Program(fn)
	if err != nil {
		t.Fatal(err)
	}
	return it, p
}

func TestFPLFig2FullPipeline(t *testing.T) {
	_, p := loadTestdata(t, "fig2.fpl", "prog")
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}

	// Boundary values.
	rep := analysis.BoundaryValues(context.Background(), p, analysis.BoundaryOptions{Seed: 1, Starts: 8, Bounds: bounds})
	if rep.BoundaryValues == 0 || rep.SoundnessViolations != 0 {
		t.Errorf("BVA: %+v", rep)
	}

	// Coverage: all four sides coverable.
	cov := analysis.Cover(context.Background(), p, analysis.CoverOptions{Seed: 2, Bounds: bounds})
	if cov.Ratio() != 1 {
		t.Errorf("coverage %v of %d sides", cov.Ratio(), cov.Total)
	}

	// Overflow on the interpreted program: the x*x op can overflow.
	ov := analysis.DetectOverflows(context.Background(), p, analysis.OverflowOptions{Seed: 3})
	if len(ov.Findings) == 0 {
		t.Error("no overflow on interpreted fig2")
	}
}

func TestFPLAssertionViolation(t *testing.T) {
	it, p := loadTestdata(t, "assertion.fpl", "prog")
	r := analysis.AssertionViolations(context.Background(), p, []instrument.Decision{
		{Site: 0, Taken: true},
		{Site: 1, Taken: false},
	}, analysis.ReachOptions{Seed: 4, Bounds: []opt.Bound{{Lo: -10, Hi: 10}}})
	if !r.Found {
		t.Fatalf("no violation found: %v", r)
	}
	it.ClearFailures()
	if _, err := it.Run("prog", r.X); err != nil {
		t.Fatal(err)
	}
	if len(it.Failures) != 1 {
		t.Errorf("replay produced %d assertion failures", len(it.Failures))
	}
}

func TestFPLNewtonLoop(t *testing.T) {
	it, p := loadTestdata(t, "newton.fpl", "newton_sqrt")
	// Semantics: the interpreted Newton iteration computes sqrt.
	for _, a := range []float64{2, 9, 100, 1e6} {
		got, err := it.Run("newton_sqrt", []float64{a})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Sqrt(a)) > 1e-6*math.Sqrt(a) {
			t.Errorf("newton_sqrt(%v) = %v, want %v", a, got, math.Sqrt(a))
		}
	}
	// Reachability of the early-convergence return (site order: the
	// z < 1 guard, the loop condition, the fabs(diff) <= 1e-12 test).
	// Find the convergence-test site by label.
	convSite := -1
	for _, b := range p.Branches {
		if strings.Contains(b.Label, "fabs(diff) <= 1e-12") {
			convSite = b.ID
		}
	}
	if convSite < 0 {
		t.Fatalf("convergence site not found among %v", p.Branches)
	}
	r := analysis.ReachPath(context.Background(), p, []instrument.Decision{{Site: convSite, Taken: true}},
		analysis.ReachOptions{Seed: 5, Bounds: []opt.Bound{{Lo: 0.5, Hi: 1e6}}})
	if !r.Found {
		t.Errorf("convergence branch unreached: %v", r)
	}
}

func TestFPLSum3Associativity(t *testing.T) {
	it, p := loadTestdata(t, "sum3.fpl", "prog")
	// Reach the left != right branch — possible only through rounding
	// (§1's associativity example), invisible to real-arithmetic
	// reasoning.
	neqSite := -1
	for _, b := range p.Branches {
		if strings.Contains(b.Label, "left != right") {
			neqSite = b.ID
		}
	}
	if neqSite < 0 {
		t.Fatalf("site not found: %v", p.Branches)
	}
	r := analysis.ReachPath(context.Background(), p, []instrument.Decision{{Site: neqSite, Taken: true}},
		analysis.ReachOptions{Seed: 6, Bounds: []opt.Bound{
			{Lo: -10, Hi: 10}, {Lo: -10, Hi: 10}, {Lo: -10, Hi: 10},
		}})
	if !r.Found {
		t.Fatalf("rounding-only branch unreached: %v", r)
	}
	// Verify concretely.
	a, b, c := r.X[0], r.X[1], r.X[2]
	if (a+b)+c == a+(b+c) {
		t.Errorf("witness %v does not break associativity", r.X)
	}
	_ = it
}

func TestFPLSinFig8Dispatch(t *testing.T) {
	// The paper's Fig. 8 (simplified GNU sin) expressed in FPL via the
	// highword builtin: boundary value analysis over the DSL-compiled
	// program must trigger the four reachable dispatch thresholds and
	// never the 2^1024 one — the §6.2 result, entirely through the
	// automatic instrumentation pipeline.
	it, p := loadTestdata(t, "sin_fig8.fpl", "sin_dispatch")

	// Semantics cross-check against the native key computation.
	for _, x := range []float64{0, 1e-9, 0.5, 2.0, 100.0, 1e9} {
		got, err := it.Run("sin_dispatch", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Sin(x)) > 1e-2 {
			t.Errorf("sin_dispatch(%v) = %v, want ≈ %v", x, got, math.Sin(x))
		}
	}

	rep := analysis.BoundaryValues(context.Background(), p, analysis.BoundaryOptions{
		Seed: 7, Starts: 48, EvalsPerStart: 4000,
	})
	if rep.SoundnessViolations != 0 {
		t.Errorf("%d soundness violations", rep.SoundnessViolations)
	}
	// Collect which thresholds were hit (branch sites are the five
	// k < c comparisons, in source order).
	thresholds := map[int]bool{}
	for _, c := range rep.Conditions {
		thresholds[c.Key.Site] = true
	}
	for site := 0; site < 4; site++ {
		if !thresholds[site] {
			t.Errorf("dispatch threshold %d not triggered (conditions: %v)", site, thresholds)
		}
	}
	if thresholds[4] {
		t.Error("the 2^1024 threshold must be unreachable for finite inputs")
	}
}
