package repro

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/gsl"
	"repro/internal/instrument"
	"repro/internal/libm"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/sat"
)

// TestPaperHeadlines asserts the evaluation's headline claims in one
// fast, top-level check (the per-package suites cover the details):
//
//  1. the §1 motivating constraint is satisfiable with the exact model,
//  2. GNU sin's reachable boundary conditions are triggered and the
//     2^1024 pair is not,
//  3. Algorithm 3 drives the documented Bessel operations to overflow,
//  4. both confirmed GSL Airy bugs manifest with GSL_SUCCESS status.
func TestPaperHeadlines(t *testing.T) {
	// (1) XSat on the motivating constraint.
	f, _, err := sat.Parse("x < 1 && x + 1 >= 2")
	if err != nil {
		t.Fatal(err)
	}
	sr := sat.Solve(context.Background(), f, sat.Options{Seed: 1, Bounds: []opt.Bound{{Lo: -4, Hi: 4}}})
	if sr.Verdict != sat.Sat || sr.Model[0] != 0.9999999999999999 {
		t.Errorf("motivating constraint: %+v", sr)
	}

	// (2) sin boundary conditions (reduced budget; full run in
	// internal/paper).
	rep := analysis.BoundaryValues(context.Background(), libm.SinProgram(), analysis.BoundaryOptions{
		Seed: 1, Starts: 48, EvalsPerStart: 4000,
	})
	reached := 0
	for site := 0; site < 4; site++ {
		for _, neg := range []bool{false, true} {
			if rep.Condition(site, neg) != nil {
				reached++
			}
		}
	}
	if reached != 8 {
		t.Errorf("sin: reached %d/8 boundary conditions", reached)
	}
	if rep.Condition(4, false) != nil || rep.Condition(4, true) != nil {
		t.Error("sin: the 2^1024 boundary must be unreachable")
	}

	// (3) The paper's spot Bessel overflows.
	p := gsl.BesselProgram()
	m := instrument.NewOverflow()
	p.Execute(m, []float64{3.2e157, 5.3e1})
	if m.Value() != 0 || m.LastSite() != gsl.BesselOpMu2 {
		t.Error("bessel: nu=3.2e157 must overflow l2")
	}

	// (4) Airy bugs.
	if res, st := gsl.AiryAi(-1.8427611519777440); !gsl.Inconsistent(res, st) {
		t.Errorf("Bug 1 does not manifest: %+v %v", res, st)
	}
	if res, st := gsl.AiryAi(-1.14e34); st != gsl.Success || (res.Val >= -1 && res.Val <= 1) {
		t.Errorf("Bug 2 does not manifest: %+v %v", res, st)
	}

	// Bonus: Fig. 2's assertion analysis end to end.
	r := analysis.AssertionViolations(context.Background(), progs.Fig1a(), []instrument.Decision{
		{Site: progs.Fig1BranchLT1, Taken: true},
		{Site: progs.Fig1BranchLT2, Taken: false},
	}, analysis.ReachOptions{Seed: 1, Bounds: []opt.Bound{{Lo: -10, Hi: 10}}})
	if !r.Found || r.X[0] != 0.9999999999999999 {
		t.Errorf("Fig. 1(a) violation: %v", r)
	}
}
