// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (§6), plus ablation
// benchmarks for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Absolute timings differ from the paper (our substrate is a pure-Go
// simulator, not the authors' C/LLVM/SciPy stack); the benchmarks
// document the shape: which analyses solve their problems within which
// budgets, and how the ablations compare.
package repro

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gsl"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/libm"
	"repro/internal/opt"
	"repro/internal/paper"
	"repro/internal/progs"
	"repro/internal/rt"
	"repro/internal/sat"
)

// BenchmarkTable1_BackendSanity regenerates Table 1: three MO backends
// on the boundary and path weak distances of Fig. 2.
func BenchmarkTable1_BackendSanity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := paper.Table1(int64(i)+1, 12000)
		if res.Rows[0].BoundaryMin != 0 {
			b.Fatal("Basinhopping failed the sanity check")
		}
	}
}

// BenchmarkFig3_BoundarySampling regenerates Figure 3: the boundary
// weak-distance graph and a Basinhopping sampling run.
func BenchmarkFig3_BoundarySampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := paper.Fig3(int64(i)+1, 4000)
		if f.ZeroSamples == 0 {
			b.Fatal("no boundary values sampled")
		}
	}
}

// BenchmarkFig4_PathSampling regenerates Figure 4: the path
// weak-distance graph and sampling.
func BenchmarkFig4_PathSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := paper.Fig4(int64(i)+1, 4000)
		if f.ZeroSamples == 0 {
			b.Fatal("no path solutions sampled")
		}
	}
}

// BenchmarkFig7_CharacteristicAblation regenerates the Fig. 7 ablation:
// the graded weak distance must solve the problem; the flat
// characteristic function degenerates into random testing.
func BenchmarkFig7_CharacteristicAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.Fig7(int64(i)+1, 20000)
		if !r.GradedFound {
			b.Fatal("graded weak distance failed")
		}
	}
}

// BenchmarkFig9_SinConvergence regenerates the Figure 9 series: number
// of sin boundary conditions triggered versus samples. The run is sized
// to reach all 8 reachable conditions.
func BenchmarkFig9_SinConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.SinBoundaryStudy(int64(i)+1, 64, 4000)
		n := len(s.Report.Progress)
		if n == 0 || s.Report.Progress[n-1].Conditions < 8 {
			b.Fatalf("reached %d conditions, want 8", s.Report.Progress[n-1].Conditions)
		}
	}
}

// BenchmarkTable2_SinBVA regenerates Table 2: per-condition boundary
// value statistics for the glibc sin port.
func BenchmarkTable2_SinBVA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.SinBoundaryStudy(int64(i)+1, 64, 4000)
		if s.Report.SoundnessViolations != 0 {
			b.Fatal("unsound boundary values")
		}
		_ = s.FormatTable2()
	}
}

// BenchmarkTable3_Bessel runs Algorithm 3 on the Bessel benchmark (one
// Table 3 row; the |O| >= 21 headline).
func BenchmarkTable3_Bessel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := analysis.DetectOverflows(context.Background(), gsl.BesselProgram(), analysis.OverflowOptions{
			Seed: int64(i) + 1, EvalsPerRound: 6000,
		})
		if len(rep.Findings) < 21 {
			b.Fatalf("found %d overflows, want >= 21", len(rep.Findings))
		}
	}
}

// BenchmarkTable3_Hyperg runs Algorithm 3 on the hyperg benchmark.
func BenchmarkTable3_Hyperg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := analysis.DetectOverflows(context.Background(), gsl.Hyperg2F0Program(), analysis.OverflowOptions{
			Seed: int64(i) + 1, EvalsPerRound: 6000,
		})
		if len(rep.Findings) == 0 {
			b.Fatal("no overflows found")
		}
	}
}

// BenchmarkTable3_Airy runs Algorithm 3 on the Airy benchmark.
func BenchmarkTable3_Airy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := analysis.DetectOverflows(context.Background(), gsl.AiryAiProgram(), analysis.OverflowOptions{
			Seed: int64(i) + 1, EvalsPerRound: 6000,
		})
		if len(rep.Findings) == 0 {
			b.Fatal("no overflows found")
		}
	}
}

// BenchmarkTable4_BesselPerOp regenerates Table 4: per-operation
// overflow inputs for the Bessel function, verifying each finding by
// replay.
func BenchmarkTable4_BesselPerOp(b *testing.B) {
	p := gsl.BesselProgram()
	for i := 0; i < b.N; i++ {
		rep := analysis.DetectOverflows(context.Background(), p, analysis.OverflowOptions{
			Seed: int64(i) + 1, EvalsPerRound: 6000,
		})
		mon := instrument.NewOverflow()
		for _, f := range rep.Findings {
			for id := range mon.L {
				delete(mon.L, id)
			}
			for _, op := range p.Ops {
				if op.ID != f.Site {
					mon.L[op.ID] = true
				}
			}
			if p.Execute(mon, f.Input) != 0 {
				b.Fatalf("finding at site %d does not replay", f.Site)
			}
		}
	}
}

// BenchmarkTable5_InconsistencyReplay regenerates Table 5: the full GSL
// pipeline with inconsistency classification and confirmed-bug replay.
func BenchmarkTable5_InconsistencyReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := paper.GSLStudy(int64(i)+1, 6000)
		var airy paper.Table3Row
		for _, r := range res.Rows {
			if r.File == "airy" {
				airy = r
			}
		}
		if airy.Bugs != 2 {
			b.Fatalf("airy bugs = %d, want 2", airy.Bugs)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblation_StopAtZero measures the early-termination contract
// (§4.4 remark): stopping the moment W = 0 is sampled versus running
// the full budget.
func BenchmarkAblation_StopAtZero(b *testing.B) {
	p := progs.Fig2()
	w := opt.Objective(p.WeakDistance(&instrument.Boundary{}))
	cfgBase := opt.Config{MaxEvals: 20000, Bounds: []opt.Bound{{Lo: -100, Hi: 100}}}
	b.Run("stop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := cfgBase
			cfg.Seed = int64(i) + 1
			cfg.StopAtZero = true
			(&opt.Basinhopping{}).Minimize(w, 1, cfg)
		}
	})
	b.Run("nostop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := cfgBase
			cfg.Seed = int64(i) + 1
			(&opt.Basinhopping{}).Minimize(w, 1, cfg)
		}
	})
}

// BenchmarkAblation_ULPvsReal compares the ULP and real-valued atom
// distances on the motivating SAT constraint (§7 / Limitation 2).
func BenchmarkAblation_ULPvsReal(b *testing.B) {
	f, _, err := sat.Parse("x < 1 && x + 1 >= 2")
	if err != nil {
		b.Fatal(err)
	}
	bounds := []opt.Bound{{Lo: -4, Hi: 4}}
	run := func(b *testing.B, real bool) {
		for i := 0; i < b.N; i++ {
			r := sat.Solve(context.Background(), f, sat.Options{
				Seed: int64(i) + 1, Starts: 4, EvalsPerStart: 10000,
				Bounds: bounds, RealDist: real,
			})
			if r.Verdict != sat.Sat {
				b.Fatal("constraint not solved")
			}
		}
	}
	b.Run("ulp", func(b *testing.B) { run(b, false) })
	b.Run("real", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_Backends compares the MO backends on the Fig. 2
// boundary problem under equal budgets.
func BenchmarkAblation_Backends(b *testing.B) {
	p := progs.Fig2()
	w := opt.Objective(p.WeakDistance(&instrument.Boundary{}))
	for _, m := range []opt.Minimizer{
		&opt.Basinhopping{},
		&opt.DifferentialEvolution{InitSpan: 100},
		&opt.Powell{},
		&opt.RandomSearch{},
		&opt.SimulatedAnnealing{},
	} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Minimize(w, 1, opt.Config{
					Seed: int64(i) + 1, MaxEvals: 10000,
					Bounds:     []opt.Bound{{Lo: -100, Hi: 100}},
					StopAtZero: true,
				})
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkWeakDistanceEval measures the cost of one weak-distance
// evaluation on the native ports (the unit the MO budgets are
// denominated in).
func BenchmarkWeakDistanceEval(b *testing.B) {
	cases := []struct {
		name string
		w    func([]float64) float64
		x    []float64
	}{
		{"fig2/boundary", progs.Fig2().WeakDistance(&instrument.Boundary{}), []float64{0.5}},
		{"sin/boundary", libm.SinProgram().WeakDistance(&instrument.Boundary{}), []float64{0.5}},
		{"bessel/overflow", gsl.BesselProgram().WeakDistance(instrument.NewOverflow()), []float64{1.5, 2.5}},
		{"airy/overflow", gsl.AiryAiProgram().WeakDistance(instrument.NewOverflow()), []float64{-1.5}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.w(c.x)
			}
		})
	}
}

// BenchmarkEvalEngine measures one instrumented objective evaluation of
// each FPL fixture under both execution engines: the compiled flat-code
// VM (the default) against the tree-walking reference interpreter. This
// is the unit every analysis budget is denominated in; the VM side must
// report 0 allocs/op. Run with
//
//	go test -bench=BenchmarkEvalEngine -benchmem
func BenchmarkEvalEngine(b *testing.B) {
	cases := []struct {
		file string // testdata fixture
		fn   string // entry function ("" = first)
		x    []float64
	}{
		{"fig2.fpl", "prog", []float64{0.5}},
		{"newton.fpl", "newton_sqrt", []float64{2.0}},
		{"sum3.fpl", "prog", []float64{0.1, 0.2, 0.3}},
		{"sin_fig8.fpl", "sin_dispatch", []float64{0.5}},
	}
	for _, c := range cases {
		src, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			b.Fatal(err)
		}
		mod, err := ir.Compile(string(src))
		if err != nil {
			b.Fatalf("%s: %v", c.file, err)
		}
		for _, engine := range []interp.Engine{interp.EngineVM, interp.EngineTree} {
			it := interp.New(mod)
			it.Engine = engine
			p, err := it.Program(c.fn)
			if err != nil {
				b.Fatal(err)
			}
			mon := &instrument.Boundary{}
			name := strings.TrimSuffix(c.file, ".fpl") + "/" + engine.String()
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.Execute(mon, c.x)
				}
			})
		}
	}
}

// BenchmarkEvalBatch measures one boundary-instrumented objective
// evaluation through the lane-parallel batch engine at several lane
// widths, against the same workloads BenchmarkEvalEngine runs serially.
// ns/op is per LANE (one batched sweep of width K counts as K
// evaluations), so the scalar-vs-batch evals/s ratio reads directly off
// the vm row of BenchmarkEvalEngine. Run with
//
//	go test -bench='BenchmarkEval(Engine|Batch)' -benchmem
func BenchmarkEvalBatch(b *testing.B) {
	cases := []struct {
		file string
		fn   string
		x    []float64
	}{
		{"fig2.fpl", "prog", []float64{0.5}},
		{"newton.fpl", "newton_sqrt", []float64{2.0}},
		{"sum3.fpl", "prog", []float64{0.1, 0.2, 0.3}},
		{"sin_fig8.fpl", "sin_dispatch", []float64{0.5}},
	}
	widths := []int{1, 4, 16, 64}
	for _, c := range cases {
		src, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			b.Fatal(err)
		}
		mod, err := ir.Compile(string(src))
		if err != nil {
			b.Fatalf("%s: %v", c.file, err)
		}
		it := interp.New(mod)
		p, err := it.Program(c.fn)
		if err != nil {
			b.Fatal(err)
		}
		for _, width := range widths {
			mons := instrument.NewLanes(width, func() rt.Monitor { return &instrument.Boundary{} })
			xs := make([][]float64, width)
			for i := range xs {
				xs[i] = c.x
			}
			out := make([]float64, width)
			name := fmt.Sprintf("%s/lanes=%d", strings.TrimSuffix(c.file, ".fpl"), width)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i += width {
					p.ExecuteBatch(mons, xs, out)
				}
			})
		}
	}
}

// BenchmarkInterpreterVsNative compares the DSL-interpreted Fig. 2
// against the native port under the same monitor (the cost of the
// compiler substrate).
func BenchmarkInterpreterVsNative(b *testing.B) {
	const src = `
func prog(x double) {
    if (x <= 1.0) { x = x + 1.0; }
    var y double = x * x;
    if (y <= 4.0) { x = x - 1.0; }
}`
	mod, err := ir.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	dsl, err := interp.New(mod).Program("prog")
	if err != nil {
		b.Fatal(err)
	}
	native := progs.Fig2()
	mon := &instrument.Boundary{}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dsl.Execute(mon, []float64{0.5})
		}
	})
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			native.Execute(mon, []float64{0.5})
		}
	})
}

// BenchmarkXSatMotivating measures end-to-end SAT solving of the §1
// constraint.
func BenchmarkXSatMotivating(b *testing.B) {
	f, _, err := sat.Parse("x < 1 && x + 1 >= 2")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := sat.Solve(context.Background(), f, sat.Options{
			Seed: int64(i) + 1, Starts: 4, EvalsPerStart: 10000,
			Bounds: []opt.Bound{{Lo: -4, Hi: 4}},
		})
		if r.Verdict != sat.Sat {
			b.Fatal("not solved")
		}
	}
}

// --- Parallel multi-start engine benchmarks ---

// benchWorkerCounts is the serial-vs-parallel comparison axis: always
// workers=1, plus the full pool when the host actually has one.
func benchWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkParallelBoundary measures the parallel multi-start engine on
// boundary value analysis of the glibc sin port (Starts restarts of the
// §4.2 minimization): the serial path (workers=1) against the full
// worker pool. Findings are identical in both runs — per-start traces
// merge in start order — so the ratio is pure wall-clock speedup.
func BenchmarkParallelBoundary(b *testing.B) {
	p := libm.SinProgram()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := analysis.BoundaryValues(context.Background(), p, analysis.BoundaryOptions{
					Seed: int64(i) + 1, Starts: 32, EvalsPerStart: 4000,
					Workers: workers,
				})
				if rep.BoundaryValues == 0 {
					b.Fatal("no boundary values sampled")
				}
			}
		})
	}
}

// BenchmarkParallelReach measures the parallel Algorithm 2 driver on a
// deliberately hard path problem (unreachable target, so every restart
// runs its full budget — the worst case a serial loop pays in full).
func BenchmarkParallelReach(b *testing.B) {
	p := progs.Fig2()
	// y <= 4 taken with x <= 1 not taken requires x in (1, 2]; shrink
	// the search box away from it so the budget is always exhausted.
	target := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: false},
		{Site: progs.Fig2BranchY, Taken: true},
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := analysis.ReachPath(context.Background(), p, target, analysis.ReachOptions{
					Seed: int64(i) + 1, Starts: 16, EvalsPerStart: 4000,
					Bounds:  []opt.Bound{{Lo: 3, Hi: 1000}},
					Workers: workers,
				})
				if r.Found {
					b.Fatal("unreachable path reported found")
				}
			}
		})
	}
}

// BenchmarkParallelOverflowStall measures speculative round execution
// in Algorithm 3's stall phase (every op tracked or given up, rounds
// make no progress — exactly where speculation pays).
func BenchmarkParallelOverflowStall(b *testing.B) {
	p := gsl.BesselProgram()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := analysis.DetectOverflows(context.Background(), p, analysis.OverflowOptions{
					Seed: int64(i) + 1, EvalsPerRound: 6000, Workers: workers,
				})
				if len(rep.Findings) == 0 {
					b.Fatal("no overflows found")
				}
			}
		})
	}
}

// BenchmarkCoverageFig2 measures CoverMe-style branch coverage on
// Fig. 2 (Instance 4).
func BenchmarkCoverageFig2(b *testing.B) {
	p := progs.Fig2()
	for i := 0; i < b.N; i++ {
		rep := analysis.Cover(context.Background(), p, analysis.CoverOptions{
			Seed: int64(i) + 1, Bounds: []opt.Bound{{Lo: -1000, Hi: 1000}},
		})
		if rep.Ratio() != 1 {
			b.Fatalf("coverage %v", rep.Ratio())
		}
	}
}

// BenchmarkSolve is the portfolio-scheduler comparison suite: every
// registered backend (including the portfolio) drives core.Solve on
// three synthetic weak distances under one budget, reporting
// time-to-zero (ns/op), evaluations actually consumed (evals/op), and
// the fraction of seeds solved (solved).
//
//   - easy: a smooth slope into a zero band — any descent method solves
//     it almost immediately; the portfolio must stay within noise of
//     the best fixed backend here (its probe IS a fixed backend).
//   - stalled: a deceptive gradient pulling every local method to a
//     zero-free plateau at the origin, with the only zeros in a narrow
//     off-gradient pocket. Fixed local backends burn the whole budget
//     at the plateau; the portfolio detects the stall and escalates to
//     globally-sampling racers.
//   - deadend: no zeros at all. Fixed backends must exhaust the budget
//     by construction; the portfolio's plateau detector exits early,
//     and the reclaimed evaluations show up as a lower evals/op.
//
// Run with
//
//	go test -bench=BenchmarkSolve -benchtime=10x
func BenchmarkSolve(b *testing.B) {
	mkProb := func(name string, w func([]float64) float64) core.Problem {
		return core.Problem{Name: name, Dim: 1, W: w,
			NewW: func() core.WeakDistance { return w }}
	}
	fixtures := []struct {
		prob   core.Problem
		bounds []opt.Bound
	}{
		{mkProb("easy", func(x []float64) float64 {
			return math.Max(0, math.Abs(x[0]-3)-1)
		}), []opt.Bound{{Lo: -100, Hi: 100}}},
		{mkProb("stalled", func(x []float64) float64 {
			if x[0] > 41 && x[0] < 42 {
				return 0
			}
			return math.Abs(x[0])/100 + 1
		}), []opt.Bound{{Lo: -100, Hi: 100}}},
		{mkProb("deadend", func(x []float64) float64 {
			return x[0]*x[0]/1e4 + 1
		}), []opt.Bound{{Lo: -100, Hi: 100}}},
	}
	for _, fx := range fixtures {
		for _, name := range opt.BackendNames() {
			be, err := opt.BackendByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fx.prob.Name+"/"+name, func(b *testing.B) {
				var evals, solved int
				for i := 0; i < b.N; i++ {
					r := core.Solve(context.Background(), fx.prob, core.Options{
						Backend: be, Starts: 4, EvalsPerStart: 4000,
						Seed: int64(i) + 1, Bounds: fx.bounds,
					})
					evals += r.Evals
					if r.Found {
						solved++
					}
				}
				b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
				b.ReportMetric(float64(solved)/float64(b.N), "solved")
			})
		}
	}
}

// BenchmarkAblation_HighPrecisionBoundary compares the plain float64
// multiplicative boundary distance against the scaled double-double
// accumulator (the §5.2 higher-precision mitigation in internal/dd).
func BenchmarkAblation_HighPrecisionBoundary(b *testing.B) {
	p := libm.SinProgram()
	for _, hp := range []bool{false, true} {
		name := "plain"
		if hp {
			name = "double-double"
		}
		b.Run(name, func(b *testing.B) {
			w := p.WeakDistance(&instrument.Boundary{HighPrecision: hp})
			for i := 0; i < b.N; i++ {
				(&opt.Basinhopping{}).Minimize(opt.Objective(w), 1, opt.Config{
					Seed: int64(i) + 1, MaxEvals: 4000, StopAtZero: true,
				})
			}
		})
	}
}
