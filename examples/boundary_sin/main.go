// Boundary value analysis of the glibc-2.19 sin port — the paper's §6.2
// case study. Prints the Table 2 rows and the Fig. 9 discovery series.
//
// Run: go run ./examples/boundary_sin
package main

import (
	"fmt"

	"repro/internal/paper"
)

func main() {
	study := paper.SinBoundaryStudy(1, 64, 4000)
	fmt.Print(study.FormatTable2())
	fmt.Println()
	fmt.Print(study.FormatFig9())
}
