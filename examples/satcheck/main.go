// Floating-point satisfiability by weak-distance minimization — the
// XSat instance (§2 Instance 5). Solves the paper's §1 motivating
// constraint (where SMT solvers need full FP bit-blasting) and a
// transcendental variant (where they give up entirely).
//
// Run: go run ./examples/satcheck
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/opt"
	"repro/internal/sat"
)

func main() {
	for _, src := range []string{
		"x < 1 && x + 1 >= 2",      // satisfiable: rounding at the binade edge
		"x < 1 && x + tan(x) >= 2", // satisfiable: via tan (Fig. 1b)
		"x < 1 && x > 2",           // unsatisfiable
		"x * x == 2",               // no exact floating-point sqrt(2)
	} {
		f, vars, err := sat.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		r := sat.Solve(context.Background(), f, sat.Options{
			Seed: 1, Starts: 6, EvalsPerStart: 10000,
			Bounds: bounds(f.Dim(), -4, 4),
		})
		fmt.Printf("%-28s -> ", src)
		if r.Verdict == sat.Sat {
			fmt.Print("sat:")
			for _, name := range sat.VarNames(vars) {
				fmt.Printf(" %s=%.17g", name, r.Model[vars[name]])
			}
			fmt.Println()
		} else {
			fmt.Printf("unknown (min W = %.3g)\n", r.MinDistance)
		}
	}
}

func bounds(dim int, lo, hi float64) []opt.Bound {
	bs := make([]opt.Bound, dim)
	for i := range bs {
		bs[i] = opt.Bound{Lo: lo, Hi: hi}
	}
	return bs
}
