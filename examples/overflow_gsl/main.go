// Overflow detection on the GSL special-function ports — the paper's
// §6.3 experiment (Algorithm 3 / fpod). Prints Tables 3-5: per-function
// overflow counts, the per-operation Bessel findings, and the
// inconsistency/bug replays.
//
// Run: go run ./examples/overflow_gsl
package main

import (
	"fmt"

	"repro/internal/paper"
)

func main() {
	study := paper.GSLStudy(1, 6000)
	fmt.Print(study.FormatTable3())
	fmt.Println()
	fmt.Print(study.FormatTable4())
	fmt.Println()
	fmt.Print(study.FormatTable5())
}
