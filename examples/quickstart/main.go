// Quickstart: analyze your own floating-point function with
// weak-distance minimization.
//
// The example wraps a small Go function as an instrumentable program,
// then (1) finds its boundary values and (2) finds an input reaching a
// chosen path — the two §4 analyses — in a few dozen lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/rt"
)

func main() {
	// A program with two branches: dom(Prog) = F^2.
	//
	//	func Prog(a, b) {
	//	    s := a*a + b*b      // op 0, op 1, op 2
	//	    if s <= 25 {        // branch 0
	//	        if a > b { … }  // branch 1
	//	    }
	//	}
	prog := &rt.Program{
		Name: "circle",
		Dim:  2,
		Ops: []rt.OpInfo{
			{ID: 0, Label: "a*a"},
			{ID: 1, Label: "b*b"},
			{ID: 2, Label: "a*a + b*b"},
		},
		Branches: []rt.BranchInfo{
			{ID: 0, Label: "s <= 25", Op: fp.LE},
			{ID: 1, Label: "a > b", Op: fp.GT},
		},
		Run: func(ctx *rt.Ctx, x []float64) {
			a, b := x[0], x[1]
			s := ctx.Op(2, ctx.Op(0, a*a)+ctx.Op(1, b*b))
			if ctx.Cmp(0, fp.LE, s, 25) {
				ctx.Cmp(1, fp.GT, a, b)
			}
		},
	}
	bounds := []opt.Bound{{Lo: -20, Hi: 20}, {Lo: -20, Hi: 20}}

	// 1. Boundary value analysis: inputs with a*a+b*b == 25 exactly, or
	// a == b inside the circle.
	rep := analysis.BoundaryValues(context.Background(), prog, analysis.BoundaryOptions{
		Seed: 1, Starts: 12, Bounds: bounds,
	})
	fmt.Printf("boundary value analysis: %d boundary values across %d conditions\n",
		rep.BoundaryValues, len(rep.Conditions))
	for _, c := range rep.Conditions {
		if len(c.Examples) > 0 {
			fmt.Printf("  condition %q: e.g. %v (hits %d)\n", c.Label, c.Examples[0], c.Hits)
		}
	}

	// 2. Path reachability: drive the program inside the circle with
	// a > b.
	r := analysis.ReachPath(context.Background(), prog, []instrument.Decision{
		{Site: 0, Taken: true},
		{Site: 1, Taken: true},
	}, analysis.ReachOptions{Seed: 2, Bounds: bounds})
	fmt.Printf("path [inside circle, a > b]: %v\n", r)
}
