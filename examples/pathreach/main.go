// Path reachability and assertion checking on an FPL source program —
// the paper's Fig. 1 analysis end to end: compile the DSL, target the
// path that violates the assertion, and let weak-distance minimization
// find the witness input.
//
// Run: go run ./examples/pathreach
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
)

const src = `
// The paper's Fig. 1(a): does the assertion hold?
func prog(x double) {
    if (x < 1.0) {
        x = x + 1.0;
        assert(x < 2.0);
    }
}`

func main() {
	mod, err := ir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	it := interp.New(mod)
	p, err := it.Program("prog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("branch sites:")
	for _, b := range mod.BranchSites {
		fmt.Printf("  br#%d %s\n", b.ID, b.Label)
	}

	// Target: enter the branch (site 0 true) and violate the assertion
	// (site 1 false: NOT x < 2).
	r := analysis.AssertionViolations(context.Background(), p, []instrument.Decision{
		{Site: 0, Taken: true},
		{Site: 1, Taken: false},
	}, analysis.ReachOptions{Seed: 1, Bounds: []opt.Bound{{Lo: -10, Hi: 10}}})

	fmt.Println("assertion-violating input search:", r)
	if r.Found {
		// Replay concretely: the interpreter records the failure.
		it.ClearFailures()
		if _, err := it.Run("prog", r.X); err != nil {
			log.Fatal(err)
		}
		for _, f := range it.Failures {
			fmt.Println("confirmed:", f)
		}
	}
}
